#include "core/accelerator.hpp"

#include <algorithm>

namespace acoustic::core {

InferenceCost Accelerator::run(const nn::NetworkDesc& net) const {
  InferenceCost cost;
  perf::CodegenResult compiled = perf::generate_program(net, config_);
  cost.perf = perf::simulate(compiled.program, config_);
  // The program (and its mappings) covers the whole batch; report
  // per-frame figures.
  const double frames = static_cast<double>(std::max(1, config_.batch));
  cost.latency_s = cost.perf.latency_s / frames;
  cost.frames_per_s = cost.latency_s > 0.0 ? 1.0 / cost.latency_s : 0.0;
  cost.energy = energy::network_energy(compiled.mappings, config_,
                                       cost.perf.latency_s);
  cost.on_chip_energy_j = cost.energy.on_chip_j() / frames;
  cost.frames_per_j =
      cost.on_chip_energy_j > 0.0 ? 1.0 / cost.on_chip_energy_j : 0.0;
  cost.dram_energy_j = cost.energy.dram_j / frames;
  cost.mappings = std::move(compiled.mappings);
  return cost;
}

std::vector<LayerCost> Accelerator::run_layers(
    const nn::NetworkDesc& net) const {
  std::vector<LayerCost> out;
  out.reserve(net.layers.size());
  const double frames = static_cast<double>(std::max(1, config_.batch));
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const nn::LayerDesc& layer = net.layers[i];
    const perf::LayerMapping m = perf::map_layer(
        layer, config_, i == 0, i + 1 == net.layers.size());
    const isa::Program prog = perf::generate_layer_program(
        layer, config_, m, 0, i == 0, i + 1 == net.layers.size());
    const perf::PerfResult perf = perf::simulate(prog, config_);
    LayerCost cost;
    cost.label = layer.label;
    cost.latency_s = perf.latency_s / frames;
    cost.on_chip_energy_j =
        energy::layer_energy(m, config_).on_chip_j() / frames;
    cost.utilization = m.utilization;
    cost.mac_cycles = m.mac_cycles;
    cost.weights_resident = m.weights_resident;
    out.push_back(std::move(cost));
  }
  return out;
}

}  // namespace acoustic::core

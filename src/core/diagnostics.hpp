// Shared structured-diagnostics engine.
//
// Every static analyzer in the repo (the ISA program linter in
// src/isa/analysis, the network-level checker in src/analysis) reports its
// findings through this one vocabulary: a Diagnostic pins one finding to
// one source anchor — either a numeric index (an instruction in a program)
// or a hierarchical path ("ResNet-18/conv3_ds") — with a stable kebab-case
// rule ID, a severity, and a human-readable message. A Report aggregates
// one analyzer run and renders it as compiler-style text or as JSON (via
// core::to_json, the same emission helpers every other exporter uses), so
// ISA lint and network check stay format-compatible by construction.
//
// This header lives in its own low-level library (acoustic_diag) below
// acoustic_isa / acoustic_sim in the link order, so any analyzer can use it
// without creating a dependency cycle with acoustic_core.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace acoustic::core {

enum class Severity : std::uint8_t {
  kNote,     ///< informational (e.g. a recommendation) — never gates
  kWarning,  ///< suspicious but executable (lint finding)
  kError,    ///< structurally broken; running it would be meaningless
};

[[nodiscard]] std::string severity_name(Severity severity);

/// Index value for findings that concern the whole artifact rather than a
/// single indexed element (e.g. instruction-memory overflow, a bad SC
/// configuration).
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

struct Diagnostic {
  std::string rule;  ///< stable rule ID, e.g. "loop-balance", "or-saturation"
  Severity severity = Severity::kWarning;
  /// Numeric anchor (instruction / layer index) or kNoIndex.
  std::size_t index = kNoIndex;
  /// Hierarchical anchor, e.g. "ResNet-18/conv3_ds" ("" = none). When both
  /// anchors are set, renderers prefer the path.
  std::string path;
  std::string message;

  /// One line: "<anchor>: <severity> [<rule>] <message>". The anchor is the
  /// path when set, else "#<index>", else "<global>".
  [[nodiscard]] std::string to_string() const;
};

/// Renders the anchor prefix of a diagnostic; analyzers override this to
/// decorate anchors with domain knowledge (the ISA linter appends the
/// instruction mnemonic: "#12 MAC").
using AnchorFormatter = std::function<std::string(const Diagnostic&)>;

/// The findings of one analyzer run over one artifact.
class Report {
 public:
  /// Index-anchored finding (pass kNoIndex for whole-artifact findings).
  void add(std::string rule, Severity severity, std::size_t index,
           std::string message);

  /// Path-anchored finding.
  void add(std::string rule, Severity severity, std::string path,
           std::string message);

  /// Appends all findings of @p other, prefixing each with @p path_prefix
  /// (joined with '/' when the finding already carries a path). Used to
  /// aggregate per-model reports into one zoo-wide report.
  void merge(const Report& other, std::string_view path_prefix = {});

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;
  [[nodiscard]] std::size_t note_count() const noexcept;

  /// No findings at all (the bar codegen-emitted programs are held to).
  [[nodiscard]] bool clean() const noexcept { return diags_.empty(); }
  /// No error-severity findings (warnings allowed).
  [[nodiscard]] bool ok() const noexcept { return error_count() == 0; }
  /// Gate predicate: errors always fail; with @p werror warnings fail too.
  /// Notes never gate — they are recommendations, and default SC configs
  /// legitimately produce them (e.g. stream-resolution subsampling).
  [[nodiscard]] bool fails(bool werror) const noexcept {
    return error_count() > 0 || (werror && warning_count() > 0);
  }

  /// True if any finding carries @p rule.
  [[nodiscard]] bool has_rule(std::string_view rule) const noexcept;
  /// Number of findings carrying @p rule.
  [[nodiscard]] std::size_t count_rule(std::string_view rule) const noexcept;

  /// Compiler-style rendering, one finding per line plus a summary line
  /// ("N error(s), M warning(s)"; notes are appended only when present).
  /// @p anchor (optional) overrides the default anchor rendering.
  [[nodiscard]] std::string to_string(
      const AnchorFormatter& anchor = nullptr) const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Serializes a report as a pretty-printed JSON object — the one wire
/// format shared by `acoustic lint --json` and `acoustic check --json`:
///   {"diagnostics": [{"rule": ..., "severity": ..., "index": ...|null,
///     "path": ...|null, "message": ...}, ...],
///    "errors": N, "warnings": N, "notes": N}
/// @p indent is the number of spaces the whole object is indented by
/// (for embedding in a larger document).
[[nodiscard]] std::string to_json(const Report& report, int indent = 0);

}  // namespace acoustic::core

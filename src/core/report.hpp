// Text-table and JSON formatting for the benchmark harnesses and CLI.
//
// The low-level JSON primitives live in obs/json.hpp (obs sits below this
// library in the link order); core re-exports them so the benches keep one
// include for "format my results".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "sim/batch_evaluator.hpp"

namespace acoustic::core {

/// A simple column-aligned text table (first row = header).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats @p value with @p digits significant digits ("N/A" for NaN).
[[nodiscard]] std::string format_number(double value, int digits = 4);

/// Escapes @p text for inclusion inside a JSON string literal (quotes,
/// backslashes and control characters).
[[nodiscard]] inline std::string json_escape(const std::string& text) {
  return obs::json_escape(text);
}

/// Shortest representation that round-trips a double (NaN/Inf -> null).
[[nodiscard]] inline std::string json_number(double value) {
  return obs::json_number(value);
}
[[nodiscard]] inline std::string json_number(std::uint64_t value) {
  return obs::json_number(value);
}

/// Serializes one dataset-evaluation result as a pretty-printed JSON
/// object (stable key order; numbers round-trip at full precision).
[[nodiscard]] std::string to_json(const sim::EvalResult& result);

struct InferenceCost;  // core/accelerator.hpp

/// Serializes one performance+energy evaluation as a compact single-line
/// JSON object, for embedding in the bench harnesses' --json documents.
[[nodiscard]] std::string to_json(const InferenceCost& cost);

}  // namespace acoustic::core

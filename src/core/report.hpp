// Text-table and JSON formatting for the benchmark harnesses and CLI.
#pragma once

#include <string>
#include <vector>

#include "sim/batch_evaluator.hpp"

namespace acoustic::core {

/// A simple column-aligned text table (first row = header).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats @p value with @p digits significant digits ("N/A" for NaN).
[[nodiscard]] std::string format_number(double value, int digits = 4);

/// Escapes @p text for inclusion inside a JSON string literal (quotes,
/// backslashes and control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Serializes one dataset-evaluation result as a pretty-printed JSON
/// object (stable key order; numbers round-trip at full precision).
[[nodiscard]] std::string to_json(const sim::EvalResult& result);

}  // namespace acoustic::core

// Text-table formatting for the benchmark harnesses.
#pragma once

#include <string>
#include <vector>

namespace acoustic::core {

/// A simple column-aligned text table (first row = header).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column alignment and a header rule.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Formats @p value with @p digits significant digits ("N/A" for NaN).
[[nodiscard]] std::string format_number(double value, int digits = 4);

}  // namespace acoustic::core

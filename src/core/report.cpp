#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace acoustic::core {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != rows_.front().size()) {
    throw std::invalid_argument("Table: column-count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      const std::string& cell = rows_[r][c];
      out += cell;
      if (c + 1 < rows_[r].size()) {
        out.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        if (c + 1 < widths.size()) {
          out += "  ";
        }
      }
      out += '\n';
    }
  }
  return out;
}

std::string format_number(double value, int digits) {
  if (std::isnan(value)) {
    return "N/A";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

}  // namespace acoustic::core

#include "core/report.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <stdexcept>

#include "core/accelerator.hpp"

namespace acoustic::core {

Table::Table(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != rows_.front().size()) {
    throw std::invalid_argument("Table: column-count mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(rows_.front().size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (std::size_t c = 0; c < rows_[r].size(); ++c) {
      const std::string& cell = rows_[r][c];
      out += cell;
      if (c + 1 < rows_[r].size()) {
        out.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        out.append(widths[c], '-');
        if (c + 1 < widths.size()) {
          out += "  ";
        }
      }
      out += '\n';
    }
  }
  return out;
}

std::string format_number(double value, int digits) {
  if (std::isnan(value)) {
    return "N/A";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string to_json(const sim::EvalResult& r) {
  std::string out = "{\n";
  out += "  \"backend\": \"" + json_escape(r.backend) + "\",\n";
  out += "  \"threads\": " + std::to_string(r.threads) + ",\n";
  out += "  \"samples\": " + std::to_string(r.samples) + ",\n";
  out += "  \"correct\": " + std::to_string(r.correct) + ",\n";
  // Recompute in double so the JSON value is the exact ratio rather than
  // the float-rounded EvalResult field widened to double.
  out += "  \"accuracy\": " +
         json_number(r.samples > 0 ? static_cast<double>(r.correct) /
                                         static_cast<double>(r.samples)
                                   : 0.0) +
         ",\n";
  out += "  \"stats\": {\n";
  out += "    \"samples\": " + json_number(r.stats.samples) + ",\n";
  out += "    \"layers_run\": " + json_number(r.stats.layers_run) + ",\n";
  out += "    \"product_bits\": " + json_number(r.stats.product_bits) +
         ",\n";
  out += "    \"skipped_operands\": " +
         json_number(r.stats.skipped_operands) + ",\n";
  out += "    \"stream_bits_generated\": " +
         json_number(r.stats.stream_bits_generated) + ",\n";
  out += "    \"stream_bits_reused\": " +
         json_number(r.stats.stream_bits_reused) + ",\n";
  out += "    \"plan_hits\": " + json_number(r.stats.plan_hits) + ",\n";
  out += "    \"plan_misses\": " + json_number(r.stats.plan_misses) + ",\n";
  out += "    \"scratch_bytes\": " + json_number(r.stats.scratch_bytes) +
         "\n";
  out += "  },\n";
  out += "  \"wall_seconds\": " + json_number(r.wall_seconds) + ",\n";
  out += "  \"throughput_sps\": " + json_number(r.throughput_sps) + ",\n";
  out += "  \"latency_us\": {\n";
  out += "    \"mean\": " + json_number(r.latency.mean_us) + ",\n";
  out += "    \"p50\": " + json_number(r.latency.p50_us) + ",\n";
  out += "    \"p90\": " + json_number(r.latency.p90_us) + ",\n";
  out += "    \"p99\": " + json_number(r.latency.p99_us) + ",\n";
  out += "    \"max\": " + json_number(r.latency.max_us) + "\n";
  out += "  }\n";
  out += "}\n";
  return out;
}

std::string to_json(const InferenceCost& cost) {
  std::string out = "{\"latency_s\": ";
  out += json_number(cost.latency_s);
  out += ", \"frames_per_s\": ";
  out += json_number(cost.frames_per_s);
  out += ", \"on_chip_energy_j\": ";
  out += json_number(cost.on_chip_energy_j);
  out += ", \"frames_per_j\": ";
  out += json_number(cost.frames_per_j);
  out += ", \"dram_energy_j\": ";
  out += json_number(cost.dram_energy_j);
  out += ", \"total_cycles\": ";
  out += json_number(cost.perf.total_cycles);
  out += ", \"instructions_dispatched\": ";
  out += json_number(cost.perf.instructions_dispatched);
  out += ", \"dram_bytes\": ";
  out += json_number(cost.perf.dram_bytes);
  out += "}";
  return out;
}

}  // namespace acoustic::core

// Unified benchmark harness: one measurement loop, one statistics
// vocabulary, one machine-readable schema ("bench.v1") for every
// performance number this repo records — the forward-latency bench, the
// kernel table, `acoustic bench`, and the committed BENCH_*.json
// baselines all speak it, so a single `--compare` implementation can
// gate any of them.
//
// Measurement model: warmup iterations (excluded), then N timed
// iterations summarized with *robust* statistics — median and MAD
// (median absolute deviation), plus min/p95/mean. Median/MAD, not
// mean/stddev, because benchmark noise is one-sided (preemption,
// frequency ramps, page faults only ever add time): a single descheduled
// iteration moves a mean by the full excursion but a median not at all,
// which is what makes the regression thresholds usable in CI.
//
// Hardware counters: when the host allows it (see obs/perf_counters.hpp)
// each timed region also records cycles / instructions / branch and
// cache misses / task-clock, reported per iteration next to the wall
// time, so a verdict of "regressed" comes with the beginning of an
// explanation (IPC collapse vs more instructions).
//
// Compare semantics (`compare()`): per entry, the current median is
// regressed/improved when it moves against the baseline median by more
// than  max(noise_mult * max(MAD_base, MAD_cur), rel_floor * |median_base|)
// in the entry's "better" direction, and unchanged otherwise — the MAD
// term absorbs the measured run-to-run noise, the relative floor keeps
// microsecond-scale entries from flagging on nanosecond jitter. Two
// back-to-back runs of the same build therefore compare "unchanged", and
// a 2x slowdown is far outside any sane threshold. Results against a
// baseline recorded on *different hardware* (cpu/simd/build mismatch in
// the meta block) are reported but marked non-gating: absolute times do
// not transfer across machines, and a CI gate that pretends they do
// flakes on every runner upgrade.
//
// Test hook: ACOUSTIC_BENCH_SLOWDOWN=<factor> stretches every timed
// iteration by busy-waiting, so the full regression pipeline (measure ->
// document -> compare -> gate) can be exercised end to end with a real,
// controlled slowdown.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/perf_counters.hpp"

namespace acoustic::obs {

/// Robust summary of one entry's per-iteration values.
struct BenchStats {
  std::size_t iters = 0;
  double median = 0.0;
  double mad = 0.0;   ///< median absolute deviation around the median
  double min = 0.0;
  double p95 = 0.0;
  double mean = 0.0;
};

/// Computes the robust summary (sorts a copy of @p samples).
[[nodiscard]] BenchStats summarize(std::vector<double> samples);

/// One benchmark result.
struct BenchEntry {
  std::string name;            ///< e.g. "kernels/and_or_popcount"
  std::string unit = "us";     ///< unit of the stats values
  bool lower_is_better = true;
  BenchStats stats;
  /// Per-iteration averages of the hardware counters measured around the
  /// timed loop ("cycles", ..., "ipc"); empty on degraded hosts.
  std::vector<std::pair<std::string, double>> counters;
};

/// Machine/build provenance stamped into every document. Everything here
/// is collected without subprocesses; the git SHA comes from the
/// environment (GITHUB_SHA in CI, ACOUSTIC_GIT_SHA elsewhere) or stays
/// empty.
struct BenchMeta {
  std::string timestamp;  ///< ISO-8601 UTC
  std::string host;
  std::string os;         ///< uname sysname + release
  std::string cpu;        ///< /proc/cpuinfo model name (or "")
  unsigned cpus = 0;
  std::string simd;       ///< active kernel dispatch level (caller-set)
  std::string build;      ///< "release" / "debug"
  std::string compiler;
  std::string git_sha;
  /// Names of the perf events this host could open (may be empty).
  std::vector<std::string> counters;
};

/// Fills every field except simd (the harness cannot link the kernel
/// layer; callers that know their dispatch level set it).
[[nodiscard]] BenchMeta collect_meta();

/// True when @p a and @p b were produced by comparable hardware/builds —
/// the precondition for gating on absolute times.
[[nodiscard]] bool meta_comparable(const BenchMeta& a, const BenchMeta& b);

/// One trajectory document: a named suite run on one machine.
struct BenchDocument {
  std::string schema = "bench.v1";
  std::string suite;
  BenchMeta meta;
  std::vector<BenchEntry> entries;

  [[nodiscard]] const BenchEntry* find(const std::string& name) const;
};

/// Serializes @p doc as the bench.v1 JSON schema (pretty, stable order).
[[nodiscard]] std::string to_json(const BenchDocument& doc);

/// Parses a bench.v1 document; throws std::runtime_error on a schema or
/// syntax violation (including documents from a future schema version).
[[nodiscard]] BenchDocument parse_bench_json(const std::string& text);

struct BenchOptions {
  int warmup = 2;
  int iters = 10;
  bool counters = true;  ///< attach a PerfCounterGroup per entry
  /// Busy-spin this long before each entry's warmup, pulling the CPU out
  /// of its idle frequency state — without it, back-to-back runs of a
  /// short suite land on different DVFS operating points and medians
  /// jump 2x with tiny in-run MADs (observed on shared vCPUs). 0 = off.
  int settle_ms = 50;
  /// Artificial per-iteration stretch factor (>= 1.0), normally 1.0;
  /// from_env() reads ACOUSTIC_BENCH_SLOWDOWN.
  double slowdown = 1.0;

  /// Default options with the slowdown hook applied from the environment.
  [[nodiscard]] static BenchOptions from_env();
};

/// Builds one BenchDocument by running closures under the shared
/// measurement loop. Not thread-safe; one Bench per suite run.
class Bench {
 public:
  Bench(std::string suite, BenchOptions options);

  [[nodiscard]] const BenchOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] BenchMeta& meta() noexcept { return doc_.meta; }

  /// Times @p fn: warmup calls, then iters timed calls (microseconds per
  /// call, lower is better), counters sampled around the timed loop.
  BenchEntry& run(const std::string& name, const std::function<void()>& fn);

  /// Like run() but each iteration *measures its own value* via @p fn
  /// (e.g. an images/s throughput); the slowdown hook does not apply.
  BenchEntry& run_value(const std::string& name, std::string unit,
                        bool lower_is_better,
                        const std::function<double()>& fn);

  /// Records a directly computed scalar (an accuracy, a ratio) as a
  /// single-observation entry; compare() falls back to the relative
  /// floor for these (MAD is zero by construction).
  BenchEntry& record(const std::string& name, double value, std::string unit,
                     bool lower_is_better);

  [[nodiscard]] const BenchDocument& document() const noexcept {
    return doc_;
  }
  /// Moves the document out (the Bench is spent afterwards).
  [[nodiscard]] BenchDocument take() { return std::move(doc_); }

 private:
  BenchOptions options_;
  BenchDocument doc_;
};

// --- comparison ---

enum class Verdict {
  kImproved,
  kUnchanged,
  kRegressed,
  kNew,      ///< entry absent from the baseline
  kMissing,  ///< baseline entry absent from the current run
};
[[nodiscard]] const char* verdict_name(Verdict verdict) noexcept;

struct CompareOptions {
  /// Noise threshold in MADs: |delta| must exceed noise_mult *
  /// max(MAD_base, MAD_cur) to leave "unchanged".
  double noise_mult = 4.0;
  /// ... and also rel_floor * |baseline median| (fraction, 0.10 = 10%).
  double rel_floor = 0.10;
};

struct CompareEntry {
  std::string name;
  std::string unit;
  Verdict verdict = Verdict::kUnchanged;
  double base_median = 0.0;
  double cur_median = 0.0;
  double ratio = 0.0;      ///< cur / base (0 when base is 0 or absent)
  double threshold = 0.0;  ///< the noise margin applied, in unit terms
};

struct CompareResult {
  std::vector<CompareEntry> entries;
  /// meta_comparable(current, baseline): when false, regressions are
  /// reported but must not gate (foreign-machine baseline).
  bool host_match = true;
  std::size_t improved = 0;
  std::size_t unchanged = 0;
  std::size_t regressed = 0;

  /// True when a gating step should fail: at least one regression AND the
  /// baseline came from comparable hardware (or @p strict forces gating).
  [[nodiscard]] bool should_fail(bool strict = false) const {
    return regressed > 0 && (host_match || strict);
  }
};

[[nodiscard]] CompareResult compare(const BenchDocument& current,
                                    const BenchDocument& baseline,
                                    const CompareOptions& options = {});

}  // namespace acoustic::obs

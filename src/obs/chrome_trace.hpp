// Chrome trace-event JSON writer (the format ui.perfetto.dev and
// chrome://tracing load directly).
//
// Output is the JSON-object flavor: {"traceEvents": [...], "otherData":
// {...}, "displayTimeUnit": "ms"}. Only complete events ("ph": "X") and
// the process/thread-name metadata events ("ph": "M") are emitted — that
// is everything the two producers need:
//   * perf::to_chrome_trace —— one process for the performance simulator,
//     one thread (track) per isa::Unit, CYCLE timebase: 1 reported "us"
//     is 1 dispatcher cycle (recorded in otherData.timebase);
//   * add_spans —— obs::Profiler spans on the wall clock, one thread per
//     evaluator worker, real microseconds.
//
// Timestamps are doubles in microseconds as the format dictates; writers
// must not mix the two timebases inside one file (use separate files, as
// the CLI flags do).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/span.hpp"

namespace acoustic::obs {

class ChromeTraceWriter {
 public:
  /// Names a process ("perf-sim", "batch-evaluator").
  void set_process_name(int pid, std::string name);
  /// Names a thread/track within a process ("MAC", "worker 3").
  void set_thread_name(int pid, int tid, std::string name);

  /// One complete event; @p ts_us / @p dur_us in the file's timebase.
  /// @p args are key -> already-JSON-encoded value (use obs::json_escape
  /// + quotes for strings, obs::json_number for numbers).
  void add_complete(int pid, int tid, std::string name, std::string category,
                    double ts_us, double dur_us,
                    std::vector<std::pair<std::string, std::string>> args = {});

  /// Adds every span as a complete event under @p pid: tid = span track,
  /// nanoseconds converted to real microseconds, counters as args.
  /// Timestamps are rebased to the earliest span so traces start near 0.
  void add_spans(int pid, const std::vector<SpanRecord>& spans);

  /// Top-level otherData entry; @p json_value must be valid JSON.
  void set_metadata(const std::string& key, std::string json_value);

  [[nodiscard]] std::size_t event_count() const noexcept {
    return events_.size();
  }

  /// Serializes the whole trace document.
  [[nodiscard]] std::string to_string() const;

 private:
  struct Event {
    std::string json;  ///< fully rendered event object
  };
  std::vector<Event> events_;
  std::vector<std::pair<std::string, std::string>> metadata_;
};

}  // namespace acoustic::obs

// Hardware performance counters below wall-clock: cycles, instructions,
// branch misses, cache misses and CPU time for one measured region.
//
// A PerfCounterGroup opens one Linux perf_event fd per event for the
// calling thread (perf_event_open(2), PERF_TYPE_HARDWARE/SOFTWARE) and
// reads multiplex-scaled deltas between start() and sample()/stop(). The
// point is attribution: a benchmark that got slower shows *why* — fewer
// instructions per cycle (stalls, cache misses) vs simply more
// instructions (algorithmic regression).
//
// Graceful degradation is the design center, not an afterthought:
//   * kernels without the syscall, containers with a seccomp filter,
//     perf_event_paranoid settings that deny unprivileged counters, and
//     VMs that do not virtualize the PMU (hardware events fail with
//     ENOENT while software events work) all degrade per event — every
//     event that cannot be opened is simply absent from the sample's
//     valid mask;
//   * the wall clock (steady_clock, i.e. clock_gettime) is always
//     measured, so a PerfSample is useful even when the mask is empty;
//   * nothing in this header throws for lack of kernel support, and a
//     fully-degraded group costs one failed syscall per event at
//     construction, nothing per start()/sample().
//
// Scope: the calling thread, plus — with Options::inherit — any thread it
// creates *after* construction (how the bench harness covers a thread
// pool spawned inside the measured region). Counters for threads that
// already exist cannot be attached retroactively; callers that need
// per-worker attribution give each worker its own group.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace acoustic::obs {

/// Events a group measures. kTaskClock is a software event and is the
/// most widely available (it works even where the PMU is hidden).
enum class PerfEvent : unsigned {
  kCycles = 0,
  kInstructions,
  kBranchMisses,
  kCacheMisses,
  kTaskClock,
};
inline constexpr unsigned kPerfEventCount = 5;

/// Stable lower-snake tag: "cycles", "instructions", "branch_misses",
/// "cache_misses", "task_clock_ns" — the names used for span counters,
/// registry metrics and bench.v1 documents.
[[nodiscard]] const char* perf_event_name(PerfEvent event) noexcept;

/// One reading: deltas since start(), multiplex-scaled (value *
/// time_enabled / time_running, the standard correction when the kernel
/// rotates more events than the PMU has slots).
struct PerfSample {
  std::array<std::uint64_t, kPerfEventCount> value{};
  unsigned valid = 0;          ///< bitmask: bit (1 << event) set when measured
  std::uint64_t wall_ns = 0;   ///< always measured (monotonic clock)

  [[nodiscard]] bool has(PerfEvent event) const noexcept {
    return (valid & (1U << static_cast<unsigned>(event))) != 0;
  }
  [[nodiscard]] std::uint64_t operator[](PerfEvent event) const noexcept {
    return value[static_cast<unsigned>(event)];
  }

  /// Instructions per cycle; NaN unless both events were measured and at
  /// least one cycle elapsed.
  [[nodiscard]] double ipc() const noexcept;
};

class PerfCounterGroup {
 public:
  struct Options {
    /// Count threads created by the measured code after this group is
    /// constructed (perf_event_attr.inherit). Off by default: inherited
    /// reads aggregate children, which is what a *benchmark* wants but
    /// not what a per-layer span wants.
    bool inherit = false;
  };

  /// Opens the event fds; failures degrade silently (see header).
  PerfCounterGroup() : PerfCounterGroup(Options{}) {}
  explicit PerfCounterGroup(Options options);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True when at least one perf event opened. A false group still
  /// produces wall_ns-only samples.
  [[nodiscard]] bool available() const noexcept { return open_mask_ != 0; }
  /// Bitmask of events that opened ((1 << PerfEvent) bits).
  [[nodiscard]] unsigned open_mask() const noexcept { return open_mask_; }

  /// Resets and enables every counter and anchors the wall clock. May be
  /// called repeatedly; each start() begins a fresh measurement.
  void start();
  /// Deltas since the last start() without stopping the counters (used by
  /// span attachment, where regions nest).
  [[nodiscard]] PerfSample sample() const;
  /// Disables the counters and returns the final deltas.
  PerfSample stop();

  /// One-syscall probe, cached per process: can this kernel/container
  /// open *any* of the group's events? (CI containers commonly cannot.)
  [[nodiscard]] static bool kernel_supported();

 private:
  std::array<int, kPerfEventCount> fd_;
  unsigned open_mask_ = 0;
  std::uint64_t start_wall_ns_ = 0;
  bool running_ = false;
};

/// Registers @p sample under "<prefix>." in @p registry: counters for the
/// raw event deltas, gauges <prefix>.ipc (when derivable) and
/// <prefix>.wall_ns. Events absent from the valid mask are not emitted at
/// all — a degraded host produces a smaller document, never zeros that
/// could be mistaken for measurements.
void export_metrics(const PerfSample& sample, Registry& registry,
                    const std::string& prefix = "hw");

}  // namespace acoustic::obs

#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace acoustic::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_quote(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  out += json_escape(text);
  out += '"';
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int digits = 1; digits < 17; ++digits) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", digits, value);
    std::sscanf(probe, "%lf", &parsed);
    if (parsed == value) {
      return probe;
    }
  }
  return buf;
}

std::string json_number(std::uint64_t value) {
  return std::to_string(value);
}

}  // namespace acoustic::obs

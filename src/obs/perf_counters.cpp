#include "obs/perf_counters.hpp"

#include <chrono>
#include <cmath>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace acoustic::obs {

namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__linux__)

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

constexpr EventSpec kSpecs[kPerfEventCount] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK},
};

int open_event(const EventSpec& spec, bool inherit) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 1;
  // User-space only: stays within the unprivileged budget of
  // perf_event_paranoid <= 2 and measures the simulator, not the kernel.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.inherit = inherit ? 1 : 0;
  // TOTAL_TIME_ENABLED/RUNNING make multiplexing visible so the value can
  // be scaled; each event is its own fd (no PERF_FORMAT_GROUP) because
  // group reads are incompatible with inherit and per-event degradation
  // is the whole point.
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

/// Scaled counter value of one fd, or false when the read fails (fd
/// revoked, short read).
bool read_scaled(int fd, std::uint64_t& out) {
  std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
  const ssize_t n = read(fd, buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf))) {
    return false;
  }
  if (buf[2] != 0 && buf[2] != buf[1]) {
    const long double scaled =
        static_cast<long double>(buf[0]) *
        (static_cast<long double>(buf[1]) / static_cast<long double>(buf[2]));
    out = static_cast<std::uint64_t>(scaled);
  } else {
    out = buf[0];
  }
  return true;
}

#endif  // __linux__

}  // namespace

const char* perf_event_name(PerfEvent event) noexcept {
  switch (event) {
    case PerfEvent::kCycles: return "cycles";
    case PerfEvent::kInstructions: return "instructions";
    case PerfEvent::kBranchMisses: return "branch_misses";
    case PerfEvent::kCacheMisses: return "cache_misses";
    case PerfEvent::kTaskClock: return "task_clock_ns";
  }
  return "unknown";
}

double PerfSample::ipc() const noexcept {
  if (!has(PerfEvent::kCycles) || !has(PerfEvent::kInstructions) ||
      (*this)[PerfEvent::kCycles] == 0) {
    return std::nan("");
  }
  return static_cast<double>((*this)[PerfEvent::kInstructions]) /
         static_cast<double>((*this)[PerfEvent::kCycles]);
}

PerfCounterGroup::PerfCounterGroup(Options options) {
  fd_.fill(-1);
#if defined(__linux__)
  for (unsigned i = 0; i < kPerfEventCount; ++i) {
    const int fd = open_event(kSpecs[i], options.inherit);
    if (fd >= 0) {
      fd_[i] = fd;
      open_mask_ |= 1U << i;
    }
  }
#else
  (void)options;
#endif
}

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (const int fd : fd_) {
    if (fd >= 0) {
      close(fd);
    }
  }
#endif
}

void PerfCounterGroup::start() {
#if defined(__linux__)
  for (const int fd : fd_) {
    if (fd >= 0) {
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }
#endif
  running_ = true;
  start_wall_ns_ = wall_now_ns();
}

PerfSample PerfCounterGroup::sample() const {
  PerfSample s;
  s.wall_ns = running_ ? wall_now_ns() - start_wall_ns_ : 0;
#if defined(__linux__)
  if (!running_) {
    return s;
  }
  for (unsigned i = 0; i < kPerfEventCount; ++i) {
    if (fd_[i] < 0) {
      continue;
    }
    std::uint64_t value = 0;
    if (read_scaled(fd_[i], value)) {
      s.value[i] = value;
      s.valid |= 1U << i;
    }
  }
#endif
  return s;
}

PerfSample PerfCounterGroup::stop() {
  const PerfSample s = sample();
#if defined(__linux__)
  for (const int fd : fd_) {
    if (fd >= 0) {
      ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
    }
  }
#endif
  running_ = false;
  return s;
}

bool PerfCounterGroup::kernel_supported() {
  static const bool supported = [] {
    const PerfCounterGroup probe;
    return probe.available();
  }();
  return supported;
}

void export_metrics(const PerfSample& sample, Registry& registry,
                    const std::string& prefix) {
  for (unsigned i = 0; i < kPerfEventCount; ++i) {
    const auto event = static_cast<PerfEvent>(i);
    if (sample.has(event)) {
      const std::string name = prefix + "." + perf_event_name(event);
      registry.add(name, sample[event]);
      registry.describe(name, std::string("perf_event delta (") +
                                  perf_event_name(event) +
                                  "), multiplex-scaled");
    }
  }
  const double ipc = sample.ipc();
  if (!std::isnan(ipc)) {
    registry.set(prefix + ".ipc", ipc);
    registry.describe(prefix + ".ipc", "instructions per cycle");
  }
  registry.set(prefix + ".wall_ns", static_cast<double>(sample.wall_ns));
  registry.describe(prefix + ".wall_ns",
                    "wall clock over the measured region (monotonic)");
}

}  // namespace acoustic::obs

// Metrics registry: the one place every simulator counter ends up.
//
// Three metric kinds, mirroring the Prometheus data model the text
// exporter targets:
//   * counters    — monotonically accumulated unsigned integers (product
//                   bits, DRAM bytes, instructions retired, ...);
//   * gauges      — last-written doubles (accuracy, area, peak power, ...);
//   * histograms  — fixed-bucket distributions with caller-declared upper
//                   edges (Prometheus "le" semantics: a value lands in the
//                   first bucket whose edge is >= value; one implicit
//                   overflow bucket past the last edge).
//
// Concurrency / determinism contract: every mutator is thread-safe behind
// one mutex, but the intended high-throughput pattern is the same sharding
// scheme sim::BatchEvaluator uses for RunStats — give each worker its own
// Registry and merge() the shards afterwards. merge() is commutative and
// associative for counters and histograms (sums) and order-insensitive for
// gauges (element-wise max), so an N-shard merge is bit-identical to
// single-threaded accumulation no matter which worker observed what.
//
// Exporters: to_json() (pretty, stable sorted key order — the document
// `acoustic eval --metrics --json` embeds) and to_prometheus() (text
// exposition format, metric names sanitized to [a-zA-Z0-9_:]).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace acoustic::obs {

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> edges;            ///< ascending upper bounds
  std::vector<std::uint64_t> buckets;   ///< edges.size() + 1 (overflow last)
  std::uint64_t count = 0;              ///< total observations
  double sum = 0.0;                     ///< sum of observed values

  bool operator==(const HistogramSnapshot&) const = default;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry& other);
  Registry& operator=(const Registry& other);

  // --- counters ---
  void add(const std::string& name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  // --- gauges ---
  void set(const std::string& name, double value);
  [[nodiscard]] double gauge(const std::string& name) const;

  // --- histograms ---
  /// Declares @p name with ascending bucket upper @p edges. Re-declaring
  /// with identical edges is a no-op; mismatched edges or an empty /
  /// non-ascending edge list throw std::invalid_argument.
  void declare_histogram(const std::string& name, std::vector<double> edges);
  /// Records @p value; throws std::invalid_argument if undeclared.
  void observe(const std::string& name, double value);
  [[nodiscard]] HistogramSnapshot histogram(const std::string& name) const;

  /// Folds @p other in: counters and histogram buckets add, gauges take
  /// the element-wise max (the only order-insensitive choice), histograms
  /// present in both must have identical edges.
  void merge(const Registry& other);

  void clear();
  [[nodiscard]] bool empty() const;

  // Snapshot views for exporters and tests (copies, already sorted —
  // std::map iteration order).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  [[nodiscard]] std::map<std::string, HistogramSnapshot> histograms() const;

  /// Pretty JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, keys sorted, indented by @p indent spaces.
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// Prometheus text exposition format (# TYPE lines, cumulative
  /// histogram buckets with le labels, +Inf bucket, _sum and _count).
  [[nodiscard]] std::string to_prometheus() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
};

}  // namespace acoustic::obs

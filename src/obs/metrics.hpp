// Metrics registry: the one place every simulator counter ends up.
//
// Three metric kinds, mirroring the Prometheus data model the text
// exporter targets:
//   * counters    — monotonically accumulated unsigned integers (product
//                   bits, DRAM bytes, instructions retired, ...);
//   * gauges      — last-written doubles (accuracy, area, peak power, ...);
//   * histograms  — fixed-bucket distributions with caller-declared upper
//                   edges (Prometheus "le" semantics: a value lands in the
//                   first bucket whose edge is >= value; one implicit
//                   overflow bucket past the last edge).
//
// Concurrency / determinism contract: every mutator is thread-safe behind
// one mutex, but the intended high-throughput pattern is the same sharding
// scheme sim::BatchEvaluator uses for RunStats — give each worker its own
// Registry and merge() the shards afterwards. merge() is commutative and
// associative for counters and histograms (sums) and order-insensitive for
// gauges (element-wise max), so an N-shard merge is bit-identical to
// single-threaded accumulation no matter which worker observed what.
//
// Exporters: to_json() (pretty, stable sorted key order — the document
// `acoustic eval --metrics --json` embeds) and to_prometheus() (text
// exposition format). The Prometheus exporter sanitizes names to the
// legal [a-zA-Z_:][a-zA-Z0-9_:]* alphabet and is collision-safe: when
// two registry names sanitize to the same exposition name (the dotted
// namespacing makes this easy — "a.b" and "a_b" collide), the exporter
// emits ONE # TYPE family and distinguishes the members with a
// name="<original>" label instead of emitting duplicate metric families,
// which scrapers reject. Cross-kind collisions (a counter and a gauge
// sanitizing identically) get a kind suffix. describe() attaches # HELP
// text (escaped per the exposition format: backslash and newline).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace acoustic::obs {

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> edges;            ///< ascending upper bounds
  std::vector<std::uint64_t> buckets;   ///< edges.size() + 1 (overflow last)
  std::uint64_t count = 0;              ///< total observations
  double sum = 0.0;                     ///< sum of observed values

  bool operator==(const HistogramSnapshot&) const = default;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry& other);
  Registry& operator=(const Registry& other);

  // --- counters ---
  void add(const std::string& name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;

  // --- gauges ---
  void set(const std::string& name, double value);
  [[nodiscard]] double gauge(const std::string& name) const;

  // --- histograms ---
  /// Declares @p name with ascending bucket upper @p edges. Re-declaring
  /// with identical edges is a no-op; mismatched edges or an empty /
  /// non-ascending edge list throw std::invalid_argument.
  void declare_histogram(const std::string& name, std::vector<double> edges);
  /// Records @p value; throws std::invalid_argument if undeclared.
  void observe(const std::string& name, double value);
  [[nodiscard]] HistogramSnapshot histogram(const std::string& name) const;

  // --- descriptions ---
  /// Attaches Prometheus # HELP text to @p name (any kind, set before or
  /// after the metric exists). Re-describing overwrites. Descriptions are
  /// exposition-only: to_json() ignores them, keeping the JSON document's
  /// byte-identical determinism contract untouched.
  void describe(const std::string& name, std::string help);
  [[nodiscard]] std::string description(const std::string& name) const;

  /// Folds @p other in: counters and histogram buckets add, gauges take
  /// the element-wise max (the only order-insensitive choice), histograms
  /// present in both must have identical edges. Descriptions merge
  /// first-writer-wins (ours kept on conflict).
  void merge(const Registry& other);

  void clear();
  [[nodiscard]] bool empty() const;

  // Snapshot views for exporters and tests (copies, already sorted —
  // std::map iteration order).
  [[nodiscard]] std::map<std::string, std::uint64_t> counters() const;
  [[nodiscard]] std::map<std::string, double> gauges() const;
  [[nodiscard]] std::map<std::string, HistogramSnapshot> histograms() const;
  [[nodiscard]] std::map<std::string, std::string> descriptions() const;

  /// Pretty JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}}, keys sorted, indented by @p indent spaces.
  [[nodiscard]] std::string to_json(int indent = 0) const;

  /// Prometheus text exposition format: # HELP (when described) and
  /// # TYPE lines per family, cumulative histogram buckets with le
  /// labels, +Inf bucket, _sum and _count; sanitized names, collision
  /// groups disambiguated with a name label (see the header comment).
  [[nodiscard]] std::string to_prometheus() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, HistogramSnapshot> histograms_;
  std::map<std::string, std::string> descriptions_;
};

/// The exposition-name sanitizer to_prometheus() uses, exposed for tests
/// and external exporters: illegal characters become '_', a leading
/// digit gets a '_' prefix, an empty name becomes "_".
[[nodiscard]] std::string prometheus_sanitize(const std::string& name);

/// Escapes @p text for a # HELP line (backslash and newline).
[[nodiscard]] std::string prometheus_escape_help(const std::string& text);

/// Escapes @p text for a label value (backslash, double-quote, newline).
[[nodiscard]] std::string prometheus_escape_label(const std::string& text);

}  // namespace acoustic::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "obs/json.hpp"

namespace acoustic::obs {

std::string prometheus_sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  if (out.empty()) {
    return "_";
  }
  if (out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string prometheus_escape_help(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string prometheus_escape_label(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

Registry::Registry(const Registry& other) {
  std::lock_guard lock(other.mutex_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  descriptions_ = other.descriptions_;
}

Registry& Registry::operator=(const Registry& other) {
  if (this == &other) {
    return *this;
  }
  // Lock both sides in a stable order to make self-assignment chains safe.
  std::scoped_lock lock(mutex_, other.mutex_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  descriptions_ = other.descriptions_;
  return *this;
}

void Registry::describe(const std::string& name, std::string help) {
  std::lock_guard lock(mutex_);
  descriptions_[name] = std::move(help);
}

std::string Registry::description(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = descriptions_.find(name);
  return it == descriptions_.end() ? std::string() : it->second;
}

void Registry::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  counters_[name] += delta;
}

std::uint64_t Registry::counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::set(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::declare_histogram(const std::string& name,
                                 std::vector<double> edges) {
  if (edges.empty()) {
    throw std::invalid_argument("Registry: histogram '" + name +
                                "' needs at least one bucket edge");
  }
  if (!std::is_sorted(edges.begin(), edges.end()) ||
      std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
    throw std::invalid_argument("Registry: histogram '" + name +
                                "' edges must be strictly ascending");
  }
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.edges != edges) {
      throw std::invalid_argument("Registry: histogram '" + name +
                                  "' re-declared with different edges");
    }
    return;
  }
  HistogramSnapshot h;
  h.buckets.assign(edges.size() + 1, 0);
  h.edges = std::move(edges);
  histograms_.emplace(name, std::move(h));
}

void Registry::observe(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    throw std::invalid_argument("Registry: observe on undeclared histogram '" +
                                name + "'");
  }
  HistogramSnapshot& h = it->second;
  // First bucket whose upper edge admits the value ("le" semantics);
  // values past the last edge land in the overflow bucket.
  const auto edge =
      std::lower_bound(h.edges.begin(), h.edges.end(), value);
  ++h.buckets[static_cast<std::size_t>(edge - h.edges.begin())];
  ++h.count;
  h.sum += value;
}

HistogramSnapshot Registry::histogram(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    throw std::invalid_argument("Registry: unknown histogram '" + name + "'");
  }
  return it->second;
}

void Registry::merge(const Registry& other) {
  // Copy the source under its own lock first; merging a registry into
  // itself then degenerates to doubling, which is at least well-defined.
  const auto counters = other.counters();
  const auto gauges = other.gauges();
  const auto histograms = other.histograms();
  const auto descriptions = other.descriptions();

  std::lock_guard lock(mutex_);
  for (const auto& [name, help] : descriptions) {
    descriptions_.emplace(name, help);  // first writer wins
  }
  for (const auto& [name, value] : counters) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : gauges) {
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, value);
    } else {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, theirs] : histograms) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, theirs);
      continue;
    }
    HistogramSnapshot& ours = it->second;
    if (ours.edges != theirs.edges) {
      throw std::invalid_argument("Registry: merge of histogram '" + name +
                                  "' with mismatched edges");
    }
    for (std::size_t i = 0; i < ours.buckets.size(); ++i) {
      ours.buckets[i] += theirs.buckets[i];
    }
    ours.count += theirs.count;
    ours.sum += theirs.sum;
  }
}

void Registry::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  descriptions_.clear();
}

bool Registry::empty() const {
  std::lock_guard lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard lock(mutex_);
  return gauges_;
}

std::map<std::string, HistogramSnapshot> Registry::histograms() const {
  std::lock_guard lock(mutex_);
  return histograms_;
}

std::map<std::string, std::string> Registry::descriptions() const {
  std::lock_guard lock(mutex_);
  return descriptions_;
}

std::string Registry::to_json(int indent) const {
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto histograms = this->histograms();

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string p1 = pad + "  ";
  const std::string p2 = pad + "    ";
  const std::string p3 = pad + "      ";

  std::string out = "{\n";
  out += p1 + "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += p2 + "\"" + json_escape(name) + "\": " + json_number(value);
    first = false;
  }
  out += counters.empty() ? std::string("},\n") : "\n" + p1 + "},\n";

  out += p1 + "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += p2 + "\"" + json_escape(name) + "\": " + json_number(value);
    first = false;
  }
  out += gauges.empty() ? std::string("},\n") : "\n" + p1 + "},\n";

  out += p1 + "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += p2 + "\"" + json_escape(name) + "\": {\n";
    out += p3 + "\"edges\": [";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      out += (i != 0U ? ", " : "") + json_number(h.edges[i]);
    }
    out += "],\n";
    out += p3 + "\"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out += (i != 0U ? ", " : "") + json_number(h.buckets[i]);
    }
    out += "],\n";
    out += p3 + "\"count\": " + json_number(h.count) + ",\n";
    out += p3 + "\"sum\": " + json_number(h.sum) + "\n";
    out += p2 + "}";
    first = false;
  }
  out += histograms.empty() ? std::string("}\n") : "\n" + p1 + "}\n";
  out += pad + "}";
  return out;
}

std::string Registry::to_prometheus() const {
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto histograms = this->histograms();
  const auto descriptions = this->descriptions();

  // Group registry names by sanitized family name (sorted maps in, sorted
  // groups out — the exposition is deterministic). Within a group the
  // members are told apart by a name label; a family name that an earlier
  // kind already claimed gets a kind suffix — the format forbids two
  // # TYPE lines for one metric name.
  std::set<std::string> claimed;
  const auto claim = [&claimed](std::string family, const char* suffix) {
    if (claimed.count(family) != 0) {
      family += suffix;
    }
    while (claimed.count(family) != 0) {
      family += '_';
    }
    claimed.insert(family);
    return family;
  };
  std::string out;
  const auto help = [&out, &descriptions](const std::string& family,
                                          const std::vector<std::string>&
                                              members) {
    for (const std::string& member : members) {
      const auto it = descriptions.find(member);
      if (it != descriptions.end() && !it->second.empty()) {
        out += "# HELP ";
        out += family;
        out += ' ';
        out += prometheus_escape_help(it->second);
        out += '\n';
        return;
      }
    }
  };
  const auto group_by_family = [](const auto& metrics) {
    std::map<std::string, std::vector<std::string>> groups;
    for (const auto& [name, value] : metrics) {
      groups[prometheus_sanitize(name)].push_back(name);
    }
    return groups;
  };

  // Sequential appends rather than chained operator+: gcc 12's -Wrestrict
  // false-fires on concatenated string temporaries (PR 105329) under -O2.
  const auto append_sample = [&out](const std::string& family,
                                    bool labelled, const std::string& member,
                                    const std::string& value) {
    out += family;
    if (labelled) {
      out += "{name=\"";
      out += prometheus_escape_label(member);
      out += "\"}";
    }
    out += ' ';
    out += value;
    out += '\n';
  };

  for (const auto& [san, members] : group_by_family(counters)) {
    const std::string family = claim(san, "_counter");
    help(family, members);
    out += "# TYPE ";
    out += family;
    out += " counter\n";
    for (const std::string& member : members) {
      append_sample(family, members.size() > 1, member,
                    json_number(counters.at(member)));
    }
  }
  for (const auto& [san, members] : group_by_family(gauges)) {
    const std::string family = claim(san, "_gauge");
    help(family, members);
    out += "# TYPE ";
    out += family;
    out += " gauge\n";
    for (const std::string& member : members) {
      append_sample(family, members.size() > 1, member,
                    json_number(gauges.at(member)));
    }
  }
  for (const auto& [san, members] : group_by_family(histograms)) {
    const std::string family = claim(san, "_histogram");
    help(family, members);
    out += "# TYPE ";
    out += family;
    out += " histogram\n";
    for (const std::string& member : members) {
      const HistogramSnapshot& h = histograms.at(member);
      std::string name_label;
      std::string bare_label;
      if (members.size() > 1) {
        name_label += "name=\"";
        name_label += prometheus_escape_label(member);
        name_label += "\",";
        bare_label += "{name=\"";
        bare_label += prometheus_escape_label(member);
        bare_label += "\"}";
      }
      const auto append_bucket = [&](const std::string& le,
                                     std::uint64_t value) {
        out += family;
        out += "_bucket{";
        out += name_label;
        out += "le=\"";
        out += le;
        out += "\"} ";
        out += json_number(value);
        out += '\n';
      };
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < h.edges.size(); ++i) {
        cumulative += h.buckets[i];
        append_bucket(json_number(h.edges[i]), cumulative);
      }
      append_bucket("+Inf", h.count);
      out += family;
      out += "_sum";
      out += bare_label;
      out += ' ';
      out += json_number(h.sum);
      out += '\n';
      out += family;
      out += "_count";
      out += bare_label;
      out += ' ';
      out += json_number(h.count);
      out += '\n';
    }
  }
  return out;
}

}  // namespace acoustic::obs

#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"

namespace acoustic::obs {

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:] only; everything else
/// (the registry's dotted namespacing in particular) becomes '_'.
std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) {
      c = '_';
    }
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

Registry::Registry(const Registry& other) {
  std::lock_guard lock(other.mutex_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
}

Registry& Registry::operator=(const Registry& other) {
  if (this == &other) {
    return *this;
  }
  // Lock both sides in a stable order to make self-assignment chains safe.
  std::scoped_lock lock(mutex_, other.mutex_);
  counters_ = other.counters_;
  gauges_ = other.gauges_;
  histograms_ = other.histograms_;
  return *this;
}

void Registry::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  counters_[name] += delta;
}

std::uint64_t Registry::counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void Registry::set(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  gauges_[name] = value;
}

double Registry::gauge(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void Registry::declare_histogram(const std::string& name,
                                 std::vector<double> edges) {
  if (edges.empty()) {
    throw std::invalid_argument("Registry: histogram '" + name +
                                "' needs at least one bucket edge");
  }
  if (!std::is_sorted(edges.begin(), edges.end()) ||
      std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
    throw std::invalid_argument("Registry: histogram '" + name +
                                "' edges must be strictly ascending");
  }
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (it->second.edges != edges) {
      throw std::invalid_argument("Registry: histogram '" + name +
                                  "' re-declared with different edges");
    }
    return;
  }
  HistogramSnapshot h;
  h.buckets.assign(edges.size() + 1, 0);
  h.edges = std::move(edges);
  histograms_.emplace(name, std::move(h));
}

void Registry::observe(const std::string& name, double value) {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    throw std::invalid_argument("Registry: observe on undeclared histogram '" +
                                name + "'");
  }
  HistogramSnapshot& h = it->second;
  // First bucket whose upper edge admits the value ("le" semantics);
  // values past the last edge land in the overflow bucket.
  const auto edge =
      std::lower_bound(h.edges.begin(), h.edges.end(), value);
  ++h.buckets[static_cast<std::size_t>(edge - h.edges.begin())];
  ++h.count;
  h.sum += value;
}

HistogramSnapshot Registry::histogram(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    throw std::invalid_argument("Registry: unknown histogram '" + name + "'");
  }
  return it->second;
}

void Registry::merge(const Registry& other) {
  // Copy the source under its own lock first; merging a registry into
  // itself then degenerates to doubling, which is at least well-defined.
  const auto counters = other.counters();
  const auto gauges = other.gauges();
  const auto histograms = other.histograms();

  std::lock_guard lock(mutex_);
  for (const auto& [name, value] : counters) {
    counters_[name] += value;
  }
  for (const auto& [name, value] : gauges) {
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, value);
    } else {
      it->second = std::max(it->second, value);
    }
  }
  for (const auto& [name, theirs] : histograms) {
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, theirs);
      continue;
    }
    HistogramSnapshot& ours = it->second;
    if (ours.edges != theirs.edges) {
      throw std::invalid_argument("Registry: merge of histogram '" + name +
                                  "' with mismatched edges");
    }
    for (std::size_t i = 0; i < ours.buckets.size(); ++i) {
      ours.buckets[i] += theirs.buckets[i];
    }
    ours.count += theirs.count;
    ours.sum += theirs.sum;
  }
}

void Registry::clear() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

bool Registry::empty() const {
  std::lock_guard lock(mutex_);
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

std::map<std::string, std::uint64_t> Registry::counters() const {
  std::lock_guard lock(mutex_);
  return counters_;
}

std::map<std::string, double> Registry::gauges() const {
  std::lock_guard lock(mutex_);
  return gauges_;
}

std::map<std::string, HistogramSnapshot> Registry::histograms() const {
  std::lock_guard lock(mutex_);
  return histograms_;
}

std::string Registry::to_json(int indent) const {
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto histograms = this->histograms();

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string p1 = pad + "  ";
  const std::string p2 = pad + "    ";
  const std::string p3 = pad + "      ";

  std::string out = "{\n";
  out += p1 + "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n" : ",\n";
    out += p2 + "\"" + json_escape(name) + "\": " + json_number(value);
    first = false;
  }
  out += counters.empty() ? std::string("},\n") : "\n" + p1 + "},\n";

  out += p1 + "\"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n" : ",\n";
    out += p2 + "\"" + json_escape(name) + "\": " + json_number(value);
    first = false;
  }
  out += gauges.empty() ? std::string("},\n") : "\n" + p1 + "},\n";

  out += p1 + "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    out += first ? "\n" : ",\n";
    out += p2 + "\"" + json_escape(name) + "\": {\n";
    out += p3 + "\"edges\": [";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      out += (i != 0U ? ", " : "") + json_number(h.edges[i]);
    }
    out += "],\n";
    out += p3 + "\"buckets\": [";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      out += (i != 0U ? ", " : "") + json_number(h.buckets[i]);
    }
    out += "],\n";
    out += p3 + "\"count\": " + json_number(h.count) + ",\n";
    out += p3 + "\"sum\": " + json_number(h.sum) + "\n";
    out += p2 + "}";
    first = false;
  }
  out += histograms.empty() ? std::string("}\n") : "\n" + p1 + "}\n";
  out += pad + "}";
  return out;
}

std::string Registry::to_prometheus() const {
  const auto counters = this->counters();
  const auto gauges = this->gauges();
  const auto histograms = this->histograms();

  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + json_number(value) + "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + json_number(value) + "\n";
  }
  for (const auto& [name, h] : histograms) {
    const std::string prom = prometheus_name(name);
    out += "# TYPE " + prom + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      cumulative += h.buckets[i];
      out += prom + "_bucket{le=\"" + json_number(h.edges[i]) + "\"} " +
             json_number(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + json_number(h.count) + "\n";
    out += prom + "_sum " + json_number(h.sum) + "\n";
    out += prom + "_count " + json_number(h.count) + "\n";
  }
  return out;
}

}  // namespace acoustic::obs

// Minimal JSON emission helpers shared by every telemetry exporter.
//
// obs sits below core (which links the simulators), so the low-level
// escaping / number formatting lives here; core::report re-exports these
// for the benches so there is exactly one implementation of "how this repo
// prints JSON": stable key order, shortest round-tripping doubles, no
// NaN/Inf (they degrade to null, which every strict parser accepts).
#pragma once

#include <cstdint>
#include <string>

namespace acoustic::obs {

/// Escapes @p text for inclusion inside a JSON string literal (quotes,
/// backslashes and control characters).
[[nodiscard]] std::string json_escape(const std::string& text);

/// json_escape plus surrounding quotes: a complete JSON string literal.
[[nodiscard]] std::string json_quote(const std::string& text);

/// Shortest decimal representation that round-trips @p value exactly
/// ("null" for NaN / Inf — JSON has neither).
[[nodiscard]] std::string json_number(double value);

[[nodiscard]] std::string json_number(std::uint64_t value);

}  // namespace acoustic::obs

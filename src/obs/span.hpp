// Scoped-span profiling: RAII wall-clock spans with attached counters.
//
// A Span measures one region (a layer's stochastic execution, one image's
// forward pass) on the monotonic clock and records itself into a Profiler
// on destruction. Instrumented code takes a nullable Profiler* — a null
// profiler makes Span construction a few pointer writes with NO clock
// reads, no counter syscalls and no string work, so the hooks can stay
// compiled into the hot paths permanently (the disabled-path budget is
// asserted by tests/obs/profile_test.cpp and tracked by the
// BM_SpanDisabled microbench). Callers must uphold their half of the
// contract: never build a span name eagerly — pass an empty string when
// the profiler is null (see sim::BatchEvaluator for the idiom).
//
// Hardware counters: attach() samples a PerfCounterGroup at the attach
// point and appends the deltas (cycles, instructions, ...) as span
// counters at close, so per-phase and per-region records carry hardware
// attribution wherever the host provides it. With a null profiler,
// attach() is a no-op — no perf fd reads on the disabled path.
//
// Capacity: a Profiler accepts at most max_spans records (default 1M);
// further spans are counted in dropped() instead of growing without
// bound — the same never-silently-truncate contract the perf simulator's
// trace recorder has.
//
// Tracks and ordering: `track` identifies the timeline lane the span
// belongs to (sim::BatchEvaluator uses the worker index, so the Chrome
// trace gets one row per pool thread); `seq` is a caller-supplied
// *structural* ordering key (stage index, layer index). Aggregation orders
// the per-layer profile by seq, which keeps the report deterministic even
// though worker threads append spans in racy wall-clock order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/perf_counters.hpp"

namespace acoustic::obs {

/// One finished span.
struct SpanRecord {
  std::string name;      ///< e.g. "conv5x5(1->6)"
  std::string category;  ///< e.g. "layer", "image"
  std::string kind;      ///< flavor within the category, e.g. "conv+pool"
  std::uint32_t track = 0;  ///< timeline lane (worker thread index)
  std::uint32_t seq = 0;    ///< structural order key (stage/layer index)
  std::uint64_t start_ns = 0;  ///< monotonic clock
  std::uint64_t dur_ns = 0;
  /// User-attached counters (product bits, skipped operands, ...).
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Thread-safe sink for finished spans.
class Profiler {
 public:
  /// Default record cap: enough for ~1M spans (hundreds of MB of trace
  /// JSON) before dropping starts.
  static constexpr std::size_t kDefaultMaxSpans = 1U << 20U;

  explicit Profiler(std::size_t max_spans = kDefaultMaxSpans)
      : max_spans_(max_spans) {}
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Monotonic timestamp in nanoseconds.
  [[nodiscard]] static std::uint64_t now_ns();

  /// Stores @p rec, or counts it as dropped once max_spans is reached.
  void record(SpanRecord rec);

  [[nodiscard]] std::size_t size() const;
  /// Spans that arrived after the cap — nonzero means every consumer
  /// (profile tables, trace files, JSON summaries) is looking at a
  /// truncated record and must say so.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;
  /// Returns all spans and clears the profiler (the dropped count
  /// resets too — a fresh recording starts empty).
  [[nodiscard]] std::vector<SpanRecord> take();

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::size_t max_spans_;
  std::uint64_t dropped_ = 0;
};

/// RAII span: starts timing at construction, records into the profiler at
/// destruction (or close()). With a null profiler every operation is a
/// no-op.
class Span {
 public:
  Span(Profiler* profiler, std::string name, std::string category,
       std::uint32_t track = 0, std::uint32_t seq = 0);
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a named counter (kept in attach order).
  void counter(std::string key, std::uint64_t value);
  /// Overrides the span kind ("conv", "dense", ...).
  void kind(std::string kind);

  /// Samples @p group now and appends the counter deltas (cycles,
  /// instructions, ... — whatever the host provides) when the span
  /// closes. The group must be started and must outlive the span; with a
  /// null profiler or null group this is a no-op.
  void attach(PerfCounterGroup* group);

  /// Stops the clock and records the span now (idempotent).
  void close();

 private:
  Profiler* profiler_;
  PerfCounterGroup* perf_ = nullptr;
  PerfSample perf_begin_;
  SpanRecord rec_;
};

/// One row of the per-layer profile: spans of one (category, name)
/// aggregated across all tracks and calls.
struct ProfileRow {
  std::string name;
  std::string kind;
  std::uint64_t calls = 0;
  double wall_ms = 0.0;  ///< summed span durations
  /// Counters summed across spans, in first-attach order.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  [[nodiscard]] std::uint64_t counter(const std::string& key) const;
};

/// Aggregates @p spans of @p category by name, ordered by (min seq, name)
/// — deterministic for any thread interleaving because seq is structural.
[[nodiscard]] std::vector<ProfileRow> aggregate_profile(
    const std::vector<SpanRecord>& spans, const std::string& category);

}  // namespace acoustic::obs

#include "obs/bench_harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/json.hpp"
#include "obs/json_read.hpp"

#if defined(__linux__) || defined(__APPLE__)
#include <sys/utsname.h>
#include <unistd.h>
#endif

namespace acoustic::obs {

namespace {

using Clock = std::chrono::steady_clock;

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median_of_sorted(const std::vector<double>& sorted) {
  const std::size_t n = sorted.size();
  if (n == 0) {
    return 0.0;
  }
  return n % 2 == 1 ? sorted[n / 2]
                    : 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

const char* env_or_empty(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr ? value : "";
}

/// Attaches per-iteration counter averages (and the aggregate IPC) of
/// @p total over @p iters to @p entry.
void attach_counters(BenchEntry& entry, const PerfSample& total,
                     std::size_t iters) {
  if (iters == 0) {
    return;
  }
  for (unsigned i = 0; i < kPerfEventCount; ++i) {
    const auto event = static_cast<PerfEvent>(i);
    if (total.has(event)) {
      entry.counters.emplace_back(
          perf_event_name(event),
          static_cast<double>(total[event]) / static_cast<double>(iters));
    }
  }
  const double ipc = total.ipc();
  if (!std::isnan(ipc)) {
    entry.counters.emplace_back("ipc", ipc);
  }
}

/// Busy-spins for @p ms so the frequency governor ramps the core to its
/// sustained operating point before anything is timed.
void settle_cpu(int ms) {
  if (ms <= 0) {
    return;
  }
  const Clock::time_point until =
      Clock::now() + std::chrono::milliseconds(ms);
  while (Clock::now() < until) {
  }
}

}  // namespace

BenchStats summarize(std::vector<double> samples) {
  BenchStats stats;
  stats.iters = samples.size();
  if (samples.empty()) {
    return stats;
  }
  std::sort(samples.begin(), samples.end());
  stats.min = samples.front();
  stats.p95 = percentile(samples, 0.95);
  stats.median = median_of_sorted(samples);
  double sum = 0.0;
  for (const double v : samples) {
    sum += v;
  }
  stats.mean = sum / static_cast<double>(samples.size());
  std::vector<double> deviations;
  deviations.reserve(samples.size());
  for (const double v : samples) {
    deviations.push_back(std::fabs(v - stats.median));
  }
  std::sort(deviations.begin(), deviations.end());
  stats.mad = median_of_sorted(deviations);
  return stats;
}

BenchMeta collect_meta() {
  BenchMeta meta;

  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%Y-%m-%dT%H:%M:%SZ", &utc);
  meta.timestamp = stamp;

#if defined(__linux__) || defined(__APPLE__)
  utsname uts{};
  if (uname(&uts) == 0) {
    meta.host = uts.nodename;
    meta.os = std::string(uts.sysname) + " " + uts.release;
  }
#endif
#if defined(__linux__)
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const std::string key = "model name";
    if (line.compare(0, key.size(), key) == 0) {
      const std::size_t colon = line.find(':');
      if (colon != std::string::npos) {
        std::size_t begin = colon + 1;
        while (begin < line.size() && line[begin] == ' ') {
          ++begin;
        }
        meta.cpu = line.substr(begin);
      }
      break;
    }
  }
#endif
  meta.cpus = std::max(1U, std::thread::hardware_concurrency());
#ifdef NDEBUG
  meta.build = "release";
#else
  meta.build = "debug";
#endif
#if defined(__clang__)
  meta.compiler = std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  meta.compiler = std::string("gcc ") + __VERSION__;
#else
  meta.compiler = "unknown";
#endif
  meta.git_sha = env_or_empty("ACOUSTIC_GIT_SHA");
  if (meta.git_sha.empty()) {
    meta.git_sha = env_or_empty("GITHUB_SHA");
  }

  const PerfCounterGroup probe;
  for (unsigned i = 0; i < kPerfEventCount; ++i) {
    if ((probe.open_mask() & (1U << i)) != 0) {
      meta.counters.emplace_back(
          perf_event_name(static_cast<PerfEvent>(i)));
    }
  }
  return meta;
}

bool meta_comparable(const BenchMeta& a, const BenchMeta& b) {
  // Absolute times transfer only between same-CPU, same-ISA-level,
  // same-build-type runs; host *name* is deliberately not part of it
  // (identical cloud runner instances compare fine).
  return a.cpu == b.cpu && a.simd == b.simd && a.build == b.build;
}

const BenchEntry* BenchDocument::find(const std::string& name) const {
  for (const BenchEntry& entry : entries) {
    if (entry.name == name) {
      return &entry;
    }
  }
  return nullptr;
}

BenchOptions BenchOptions::from_env() {
  BenchOptions options;
  const char* slow = std::getenv("ACOUSTIC_BENCH_SLOWDOWN");
  if (slow != nullptr) {
    const double factor = std::strtod(slow, nullptr);
    if (factor > 1.0) {
      options.slowdown = factor;
    }
  }
  return options;
}

Bench::Bench(std::string suite, BenchOptions options)
    : options_(options) {
  doc_.suite = std::move(suite);
  doc_.meta = collect_meta();
}

BenchEntry& Bench::run(const std::string& name,
                       const std::function<void()>& fn) {
  settle_cpu(options_.settle_ms);
  for (int i = 0; i < options_.warmup; ++i) {
    fn();
  }
  const int iters = std::max(1, options_.iters);
  std::vector<double> times_us;
  times_us.reserve(static_cast<std::size_t>(iters));

  PerfCounterGroup counters({.inherit = true});
  if (options_.counters) {
    counters.start();
  }
  for (int i = 0; i < iters; ++i) {
    const Clock::time_point t0 = Clock::now();
    fn();
    if (options_.slowdown > 1.0) {
      // Test hook: stretch the iteration by busy-waiting inside the
      // timed window, a real slowdown as far as every clock and the
      // task-clock counter are concerned.
      const Clock::time_point mid = Clock::now();
      const Clock::time_point target =
          t0 + std::chrono::duration_cast<Clock::duration>(
                   (mid - t0) * options_.slowdown);
      while (Clock::now() < target) {
      }
    }
    const Clock::time_point t1 = Clock::now();
    times_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  const PerfSample total =
      options_.counters ? counters.stop() : PerfSample{};

  BenchEntry entry;
  entry.name = name;
  entry.stats = summarize(std::move(times_us));
  attach_counters(entry, total, static_cast<std::size_t>(iters));
  doc_.entries.push_back(std::move(entry));
  return doc_.entries.back();
}

BenchEntry& Bench::run_value(const std::string& name, std::string unit,
                             bool lower_is_better,
                             const std::function<double()>& fn) {
  settle_cpu(options_.settle_ms);
  for (int i = 0; i < options_.warmup; ++i) {
    (void)fn();
  }
  const int iters = std::max(1, options_.iters);
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(iters));
  PerfCounterGroup counters({.inherit = true});
  if (options_.counters) {
    counters.start();
  }
  for (int i = 0; i < iters; ++i) {
    values.push_back(fn());
  }
  const PerfSample total =
      options_.counters ? counters.stop() : PerfSample{};

  BenchEntry entry;
  entry.name = name;
  entry.unit = std::move(unit);
  entry.lower_is_better = lower_is_better;
  entry.stats = summarize(std::move(values));
  attach_counters(entry, total, static_cast<std::size_t>(iters));
  doc_.entries.push_back(std::move(entry));
  return doc_.entries.back();
}

BenchEntry& Bench::record(const std::string& name, double value,
                          std::string unit, bool lower_is_better) {
  BenchEntry entry;
  entry.name = name;
  entry.unit = std::move(unit);
  entry.lower_is_better = lower_is_better;
  entry.stats = summarize({value});
  doc_.entries.push_back(std::move(entry));
  return doc_.entries.back();
}

std::string to_json(const BenchDocument& doc) {
  std::string out = "{\n";
  out += "  \"schema\": " + json_quote(doc.schema) + ",\n";
  out += "  \"suite\": " + json_quote(doc.suite) + ",\n";
  out += "  \"meta\": {\n";
  out += "    \"timestamp\": " + json_quote(doc.meta.timestamp) + ",\n";
  out += "    \"host\": " + json_quote(doc.meta.host) + ",\n";
  out += "    \"os\": " + json_quote(doc.meta.os) + ",\n";
  out += "    \"cpu\": " + json_quote(doc.meta.cpu) + ",\n";
  out += "    \"cpus\": " +
         json_number(static_cast<std::uint64_t>(doc.meta.cpus)) + ",\n";
  out += "    \"simd\": " + json_quote(doc.meta.simd) + ",\n";
  out += "    \"build\": " + json_quote(doc.meta.build) + ",\n";
  out += "    \"compiler\": " + json_quote(doc.meta.compiler) + ",\n";
  out += "    \"git_sha\": " + json_quote(doc.meta.git_sha) + ",\n";
  out += "    \"counters\": [";
  for (std::size_t i = 0; i < doc.meta.counters.size(); ++i) {
    out += (i != 0 ? ", " : "") + json_quote(doc.meta.counters[i]);
  }
  out += "]\n  },\n";
  out += "  \"entries\": [";
  for (std::size_t i = 0; i < doc.entries.size(); ++i) {
    const BenchEntry& e = doc.entries[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + json_quote(e.name);
    out += ", \"unit\": " + json_quote(e.unit);
    out += ", \"better\": ";
    out += e.lower_is_better ? "\"lower\"" : "\"higher\"";
    out += ", \"iters\": " +
           json_number(static_cast<std::uint64_t>(e.stats.iters));
    out += ",\n     \"median\": " + json_number(e.stats.median);
    out += ", \"mad\": " + json_number(e.stats.mad);
    out += ", \"min\": " + json_number(e.stats.min);
    out += ", \"p95\": " + json_number(e.stats.p95);
    out += ", \"mean\": " + json_number(e.stats.mean);
    if (!e.counters.empty()) {
      out += ",\n     \"counters\": {";
      for (std::size_t c = 0; c < e.counters.size(); ++c) {
        out += (c != 0 ? ", " : "") + json_quote(e.counters[c].first) +
               ": " + json_number(e.counters[c].second);
      }
      out += "}";
    }
    out += "}";
  }
  out += doc.entries.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

BenchDocument parse_bench_json(const std::string& text) {
  JsonValue root = JsonValue::parse(text);
  if (!root.is_object()) {
    throw std::runtime_error("bench document: top level is not an object");
  }
  const JsonValue* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "bench.v1") {
    throw std::runtime_error(
        "bench document: missing or unsupported schema (want \"bench.v1\")");
  }
  BenchDocument doc;
  doc.schema = schema->as_string();
  if (const JsonValue* suite = root.find("suite"); suite != nullptr) {
    doc.suite = suite->as_string();
  }
  if (const JsonValue* meta = root.find("meta");
      meta != nullptr && meta->is_object()) {
    const auto str = [&](const char* key) -> std::string {
      const JsonValue* v = meta->find(key);
      return v != nullptr && v->is_string() ? v->as_string() : std::string();
    };
    doc.meta.timestamp = str("timestamp");
    doc.meta.host = str("host");
    doc.meta.os = str("os");
    doc.meta.cpu = str("cpu");
    doc.meta.simd = str("simd");
    doc.meta.build = str("build");
    doc.meta.compiler = str("compiler");
    doc.meta.git_sha = str("git_sha");
    if (const JsonValue* cpus = meta->find("cpus");
        cpus != nullptr && cpus->is_number()) {
      doc.meta.cpus = static_cast<unsigned>(cpus->as_number());
    }
    if (const JsonValue* counters = meta->find("counters");
        counters != nullptr && counters->is_array()) {
      for (const JsonValue& name : counters->items()) {
        doc.meta.counters.push_back(name.as_string());
      }
    }
  }
  const JsonValue* entries = root.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    throw std::runtime_error("bench document: missing \"entries\" array");
  }
  for (const JsonValue& item : entries->items()) {
    if (!item.is_object()) {
      throw std::runtime_error("bench document: entry is not an object");
    }
    BenchEntry entry;
    entry.name = item.at("name").as_string();
    if (const JsonValue* unit = item.find("unit"); unit != nullptr) {
      entry.unit = unit->as_string();
    }
    if (const JsonValue* better = item.find("better"); better != nullptr) {
      entry.lower_is_better = better->as_string() != "higher";
    }
    const auto num = [&](const char* key) -> double {
      const JsonValue* v = item.find(key);
      return v != nullptr && v->is_number() ? v->as_number() : 0.0;
    };
    entry.stats.iters = static_cast<std::size_t>(num("iters"));
    entry.stats.median = num("median");
    entry.stats.mad = num("mad");
    entry.stats.min = num("min");
    entry.stats.p95 = num("p95");
    entry.stats.mean = num("mean");
    if (const JsonValue* counters = item.find("counters");
        counters != nullptr && counters->is_object()) {
      for (const auto& [key, value] : counters->members()) {
        if (value.is_number()) {
          entry.counters.emplace_back(key, value.as_number());
        }
      }
    }
    doc.entries.push_back(std::move(entry));
  }
  return doc;
}

const char* verdict_name(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kImproved: return "improved";
    case Verdict::kUnchanged: return "unchanged";
    case Verdict::kRegressed: return "regressed";
    case Verdict::kNew: return "new";
    case Verdict::kMissing: return "missing";
  }
  return "unknown";
}

CompareResult compare(const BenchDocument& current,
                      const BenchDocument& baseline,
                      const CompareOptions& options) {
  CompareResult result;
  result.host_match = meta_comparable(current.meta, baseline.meta);

  for (const BenchEntry& cur : current.entries) {
    CompareEntry row;
    row.name = cur.name;
    row.unit = cur.unit;
    row.cur_median = cur.stats.median;
    const BenchEntry* base = baseline.find(cur.name);
    if (base == nullptr) {
      row.verdict = Verdict::kNew;
      result.entries.push_back(std::move(row));
      continue;
    }
    row.base_median = base->stats.median;
    row.ratio = base->stats.median != 0.0
                    ? cur.stats.median / base->stats.median
                    : 0.0;
    row.threshold =
        std::max(options.noise_mult * std::max(base->stats.mad,
                                               cur.stats.mad),
                 options.rel_floor * std::fabs(base->stats.median));
    // delta > 0 means "worse" once oriented by the better-direction.
    const double delta = cur.lower_is_better
                             ? cur.stats.median - base->stats.median
                             : base->stats.median - cur.stats.median;
    if (delta > row.threshold) {
      row.verdict = Verdict::kRegressed;
      ++result.regressed;
    } else if (delta < -row.threshold) {
      row.verdict = Verdict::kImproved;
      ++result.improved;
    } else {
      row.verdict = Verdict::kUnchanged;
      ++result.unchanged;
    }
    result.entries.push_back(std::move(row));
  }

  for (const BenchEntry& base : baseline.entries) {
    if (current.find(base.name) == nullptr) {
      CompareEntry row;
      row.name = base.name;
      row.unit = base.unit;
      row.base_median = base.stats.median;
      row.verdict = Verdict::kMissing;
      result.entries.push_back(std::move(row));
    }
  }
  return result;
}

}  // namespace acoustic::obs

#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <limits>

#include "obs/json.hpp"

namespace acoustic::obs {

namespace {

std::string args_json(
    const std::vector<std::pair<std::string, std::string>>& args) {
  std::string out = "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += json_quote(args[i].first);
    out += ": ";
    out += args[i].second;
  }
  out += "}";
  return out;
}

std::string metadata_event(int pid, int tid, const std::string& which,
                           const std::string& name, bool thread_scoped) {
  std::string out = "{\"ph\": \"M\", \"name\": \"";
  out += which;
  out += "\", \"pid\": " + std::to_string(pid);
  if (thread_scoped) {
    out += ", \"tid\": " + std::to_string(tid);
  }
  out += ", \"args\": {\"name\": ";
  out += json_quote(name);
  out += "}}";
  return out;
}

}  // namespace

void ChromeTraceWriter::set_process_name(int pid, std::string name) {
  events_.push_back(
      Event{metadata_event(pid, 0, "process_name", name, false)});
}

void ChromeTraceWriter::set_thread_name(int pid, int tid, std::string name) {
  events_.push_back(
      Event{metadata_event(pid, tid, "thread_name", name, true)});
}

void ChromeTraceWriter::add_complete(
    int pid, int tid, std::string name, std::string category, double ts_us,
    double dur_us, std::vector<std::pair<std::string, std::string>> args) {
  std::string out = "{\"ph\": \"X\", \"name\": ";
  out += json_quote(name);
  out += ", \"cat\": ";
  out += json_quote(category);
  out += ", \"ts\": " + json_number(ts_us) +
         ", \"dur\": " + json_number(dur_us) +
         ", \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid);
  if (!args.empty()) {
    out += ", \"args\": " + args_json(args);
  }
  out += "}";
  events_.push_back(Event{std::move(out)});
}

void ChromeTraceWriter::add_spans(int pid,
                                  const std::vector<SpanRecord>& spans) {
  std::uint64_t base_ns = std::numeric_limits<std::uint64_t>::max();
  for (const SpanRecord& span : spans) {
    base_ns = std::min(base_ns, span.start_ns);
  }
  for (const SpanRecord& span : spans) {
    std::vector<std::pair<std::string, std::string>> args;
    args.reserve(span.counters.size() + (span.kind.empty() ? 0 : 1));
    if (!span.kind.empty()) {
      args.emplace_back("kind", json_quote(span.kind));
    }
    for (const auto& [key, value] : span.counters) {
      args.emplace_back(key, json_number(value));
    }
    add_complete(pid, static_cast<int>(span.track), span.name, span.category,
                 static_cast<double>(span.start_ns - base_ns) * 1e-3,
                 static_cast<double>(span.dur_ns) * 1e-3, std::move(args));
  }
}

void ChromeTraceWriter::set_metadata(const std::string& key,
                                     std::string json_value) {
  for (auto& [existing, value] : metadata_) {
    if (existing == key) {
      value = std::move(json_value);
      return;
    }
  }
  metadata_.emplace_back(key, std::move(json_value));
}

std::string ChromeTraceWriter::to_string() const {
  std::string out = "{\n  \"traceEvents\": [";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    " + events_[i].json;
  }
  out += events_.empty() ? "],\n" : "\n  ],\n";
  out += "  \"otherData\": {";
  for (std::size_t i = 0; i < metadata_.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    ";
    out += json_quote(metadata_[i].first);
    out += ": ";
    out += metadata_[i].second;
  }
  out += metadata_.empty() ? "},\n" : "\n  },\n";
  out += "  \"displayTimeUnit\": \"ms\"\n}\n";
  return out;
}

}  // namespace acoustic::obs

#include "obs/json_read.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace acoustic::obs {

namespace {

[[noreturn]] void kind_error(const char* want, JsonValue::Kind got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "number",
                                           "string", "array", "object"};
  throw std::logic_error(std::string("JsonValue: expected ") + want +
                         ", value is " + kNames[static_cast<int>(got)]);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) {
    kind_error("bool", kind_);
  }
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) {
    kind_error("number", kind_);
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) {
    kind_error("string", kind_);
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::kArray) {
    kind_error("array", kind_);
  }
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (kind_ != Kind::kObject) {
    kind_error("object", kind_);
  }
  return members_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members_) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    throw std::out_of_range("JsonValue: no member '" + key + "'");
  }
  return *value;
}

std::size_t JsonValue::size() const noexcept {
  if (kind_ == Kind::kArray) {
    return items_.size();
  }
  if (kind_ == Kind::kObject) {
    return members_.size();
  }
  return 0;
}

/// Recursive-descent parser over one string_view. Depth is bounded so a
/// hostile "[[[[..." input cannot blow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& why) const {
    std::string context(text_.substr(pos_, std::min<std::size_t>(
                                               20, text_.size() - pos_)));
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + why + " (near '" +
                         context + "')");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) {
      fail("nesting deeper than the reader supports");
    }
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (consume_literal("true")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = true;
          return v;
        }
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) {
          JsonValue v;
          v.kind_ = JsonValue::Kind::kBool;
          v.bool_ = false;
          return v;
        }
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) {
          return JsonValue{};
        }
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= text_.size()) {
        fail("truncated \\u escape");
      }
      const char c = text_[pos_++];
      code <<= 4U;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        --pos_;
        fail("bad hex digit in \\u escape");
      }
    }
    return code;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80U) {
      out += static_cast<char>(code);
    } else if (code < 0x800U) {
      out += static_cast<char>(0xC0U | (code >> 6U));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    } else if (code < 0x10000U) {
      out += static_cast<char>(0xE0U | (code >> 12U));
      out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    } else {
      out += static_cast<char>(0xF0U | (code >> 18U));
      out += static_cast<char>(0x80U | ((code >> 12U) & 0x3FU));
      out += static_cast<char>(0x80U | ((code >> 6U) & 0x3FU));
      out += static_cast<char>(0x80U | (code & 0x3FU));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20U) {
        --pos_;
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("dangling escape");
      }
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xD800U && code <= 0xDBFFU) {
            // High surrogate: a low surrogate must follow.
            if (!consume_literal("\\u")) {
              fail("lone high surrogate");
            }
            const unsigned low = parse_hex4();
            if (low < 0xDC00U || low > 0xDFFFU) {
              fail("bad low surrogate");
            }
            code = 0x10000U + ((code - 0xD800U) << 10U) + (low - 0xDC00U);
          } else if (code >= 0xDC00U && code <= 0xDFFFU) {
            fail("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          pos_ -= 1;
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      pos_ = start;
      fail("expected a value");
    }
    // Grammar check (strtod is laxer than JSON: hex, inf, leading '+').
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digits must follow the decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        fail("digits must follow the exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("malformed number");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;  // overflow degrades to +-inf, like every reader
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

}  // namespace acoustic::obs

#include "obs/span.hpp"

#include <algorithm>
#include <chrono>
#include <map>

namespace acoustic::obs {

std::uint64_t Profiler::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void Profiler::record(SpanRecord rec) {
  std::lock_guard lock(mutex_);
  if (spans_.size() >= max_spans_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(rec));
}

std::size_t Profiler::size() const {
  std::lock_guard lock(mutex_);
  return spans_.size();
}

std::uint64_t Profiler::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::vector<SpanRecord> Profiler::snapshot() const {
  std::lock_guard lock(mutex_);
  return spans_;
}

std::vector<SpanRecord> Profiler::take() {
  std::lock_guard lock(mutex_);
  std::vector<SpanRecord> out;
  out.swap(spans_);
  dropped_ = 0;
  return out;
}

Span::Span(Profiler* profiler, std::string name, std::string category,
           std::uint32_t track, std::uint32_t seq)
    : profiler_(profiler) {
  if (profiler_ == nullptr) {
    return;
  }
  rec_.name = std::move(name);
  rec_.category = std::move(category);
  rec_.track = track;
  rec_.seq = seq;
  rec_.start_ns = Profiler::now_ns();
}

void Span::counter(std::string key, std::uint64_t value) {
  if (profiler_ == nullptr) {
    return;
  }
  rec_.counters.emplace_back(std::move(key), value);
}

void Span::kind(std::string kind) {
  if (profiler_ == nullptr) {
    return;
  }
  rec_.kind = std::move(kind);
}

void Span::attach(PerfCounterGroup* group) {
  if (profiler_ == nullptr || group == nullptr) {
    return;
  }
  perf_ = group;
  perf_begin_ = group->sample();
}

void Span::close() {
  if (profiler_ == nullptr) {
    return;
  }
  rec_.dur_ns = Profiler::now_ns() - rec_.start_ns;
  if (perf_ != nullptr) {
    const PerfSample end = perf_->sample();
    for (unsigned i = 0; i < kPerfEventCount; ++i) {
      const auto event = static_cast<PerfEvent>(i);
      if (end.has(event) && perf_begin_.has(event) &&
          end[event] >= perf_begin_[event]) {
        rec_.counters.emplace_back(perf_event_name(event),
                                   end[event] - perf_begin_[event]);
      }
    }
    perf_ = nullptr;
  }
  profiler_->record(std::move(rec_));
  profiler_ = nullptr;
}

std::uint64_t ProfileRow::counter(const std::string& key) const {
  for (const auto& [name, value] : counters) {
    if (name == key) {
      return value;
    }
  }
  return 0;
}

std::vector<ProfileRow> aggregate_profile(
    const std::vector<SpanRecord>& spans, const std::string& category) {
  struct Accum {
    ProfileRow row;
    std::uint32_t min_seq = 0;
  };
  std::map<std::string, Accum> by_name;
  for (const SpanRecord& span : spans) {
    if (span.category != category) {
      continue;
    }
    auto [it, inserted] = by_name.try_emplace(span.name);
    Accum& acc = it->second;
    if (inserted) {
      acc.row.name = span.name;
      acc.row.kind = span.kind;
      acc.min_seq = span.seq;
    } else {
      acc.min_seq = std::min(acc.min_seq, span.seq);
    }
    ++acc.row.calls;
    acc.row.wall_ms += static_cast<double>(span.dur_ns) * 1e-6;
    for (const auto& [key, value] : span.counters) {
      auto slot = std::find_if(
          acc.row.counters.begin(), acc.row.counters.end(),
          [&](const auto& kv) { return kv.first == key; });
      if (slot == acc.row.counters.end()) {
        acc.row.counters.emplace_back(key, value);
      } else {
        slot->second += value;
      }
    }
  }

  std::vector<Accum> accums;
  accums.reserve(by_name.size());
  for (auto& [name, acc] : by_name) {
    accums.push_back(std::move(acc));
  }
  std::sort(accums.begin(), accums.end(), [](const Accum& a, const Accum& b) {
    if (a.min_seq != b.min_seq) {
      return a.min_seq < b.min_seq;
    }
    return a.row.name < b.row.name;
  });
  std::vector<ProfileRow> rows;
  rows.reserve(accums.size());
  for (Accum& acc : accums) {
    rows.push_back(std::move(acc.row));
  }
  return rows;
}

}  // namespace acoustic::obs

// Minimal JSON reader: the parsing counterpart of obs/json.hpp.
//
// Every machine-readable document this repo emits (bench.v1 trajectory
// files, Chrome trace events, the metrics/eval JSON) is consumed back by
// the same code base — `acoustic bench --compare` reads baselines, the
// trace round-trip tests validate required event fields — so the reader
// lives next to the writer and speaks exactly the same dialect: objects,
// arrays, strings (full escape set incl. \uXXXX surrogate pairs), doubles,
// bools, null. No extensions (comments, trailing commas, NaN literals):
// a document the writer cannot produce is a parse error here.
//
// Values are an immutable tree built by JsonValue::parse. Object members
// keep insertion order (the writers emit sorted keys; keeping order makes
// mismatches reproducible in tests); lookup is linear, which is fine for
// the document sizes involved (benchmark baselines, trace metadata).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace acoustic::obs {

/// Thrown on malformed input; what() carries a byte offset and context.
class JsonParseError : public std::runtime_error {
 public:
  explicit JsonParseError(const std::string& what) : std::runtime_error(what) {}
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses one complete JSON document (trailing whitespace allowed,
  /// trailing garbage is an error). Throws JsonParseError.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  JsonValue() = default;  ///< null

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }

  /// Typed accessors; throw std::logic_error on a kind mismatch so a test
  /// reading a malformed document fails with a message, not UB.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  /// Array elements (throws unless is_array()).
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  /// Object members in document order (throws unless is_object()).
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const;

  /// Object member by key; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const;
  /// Object member by key; throws std::out_of_range when absent.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool has(const std::string& key) const {
    return find(key) != nullptr;
  }

  /// Array length / object member count (0 for scalar kinds).
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace acoustic::obs

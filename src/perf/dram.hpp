// External memory interface models (paper Fig. 4 sweeps DDR3-800 through
// DDR3-2133 plus HBM).
//
// The performance simulator only needs a sustained-bandwidth ceiling and a
// per-byte transfer energy; both use standard published values (64-bit
// DDR3 channel peak bandwidth; Horowitz-style access energies) in place of
// the paper's CACTI 6.5 runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace acoustic::perf {

struct DramSpec {
  std::string name;
  double bandwidth_bytes_per_s = 0.0;
  double energy_pj_per_byte = 0.0;

  /// Cycles (at @p clock_hz) to move @p bytes at peak sustained bandwidth.
  [[nodiscard]] std::uint64_t transfer_cycles(std::uint64_t bytes,
                                              double clock_hz) const;

  /// Seconds to move @p bytes.
  [[nodiscard]] double transfer_seconds(std::uint64_t bytes) const;

  /// Joules to move @p bytes.
  [[nodiscard]] double transfer_energy_j(std::uint64_t bytes) const;
};

[[nodiscard]] DramSpec ddr3_800();
[[nodiscard]] DramSpec ddr3_1066();
[[nodiscard]] DramSpec ddr3_1333();
[[nodiscard]] DramSpec ddr3_1600();
[[nodiscard]] DramSpec ddr3_1866();
[[nodiscard]] DramSpec ddr3_2133();
[[nodiscard]] DramSpec hbm();

/// The seven interfaces of Fig. 4, in plot order.
[[nodiscard]] std::vector<DramSpec> figure4_interfaces();

}  // namespace acoustic::perf

// Telemetry exporters for the performance simulator: PerfResult counters
// into an obs::Registry, and TracedResult into a Chrome/Perfetto trace
// (one track per isa::Unit on the cycle timebase).
#pragma once

#include "obs/chrome_trace.hpp"
#include "obs/metrics.hpp"
#include "perf/arch_config.hpp"
#include "perf/timeline.hpp"

namespace acoustic::perf {

/// Registers the cycle/unit/DRAM counters of @p result under the "perf."
/// namespace: perf.total_cycles, perf.instructions_dispatched,
/// perf.dram_bytes and perf.unit.<name>.{busy_cycles,instructions} for
/// every unit that retired at least one instruction.
void export_metrics(const PerfResult& result, obs::Registry& registry);

/// Fills @p writer with the dispatcher overlap picture Fig. 2 promises:
/// process @p pid named "perf-sim (<arch>)", one named thread per active
/// isa::Unit, one complete event per recorded TraceEvent. Timebase is
/// CYCLES (1 reported "us" = 1 cycle — Chrome JSON has no cycle unit);
/// otherData records timebase, clock_mhz, total_cycles and
/// dropped_events so truncation is visible in the file itself.
void to_chrome_trace(const TracedResult& traced, const ArchConfig& arch,
                     obs::ChromeTraceWriter& writer, int pid = 0);

}  // namespace acoustic::perf

#include "perf/perf_sim.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <vector>

#include "perf/mapping.hpp"
#include "perf/timeline.hpp"

namespace acoustic::perf {

namespace {

/// One control unit: a FIFO of in-flight completion times plus the time its
/// last queued instruction finishes.
struct UnitState {
  std::deque<std::uint64_t> inflight;  // completion times, ascending
  std::uint64_t last_end = 0;

  void retire_until(std::uint64_t now) {
    while (!inflight.empty() && inflight.front() <= now) {
      inflight.pop_front();
    }
  }
};

std::uint64_t duration_of(const isa::Instruction& instr,
                          const ArchConfig& arch) {
  switch (instr.op) {
    case isa::Opcode::kActLd:
    case isa::Opcode::kActSt:
    case isa::Opcode::kWgtLd:
      if (!arch.has_dram) {
        throw std::invalid_argument(
            "perf: DMA instruction on a DRAM-less configuration");
      }
      return arch.dram.transfer_cycles(instr.bytes, arch.clock_hz());
    case isa::Opcode::kMac:
    case isa::Opcode::kWgtShift:
      return instr.cycles;
    case isa::Opcode::kActRng:
    case isa::Opcode::kWgtRng:
      return ceil_div(instr.bytes,
                      static_cast<std::uint64_t>(arch.sng_load_lanes));
    case isa::Opcode::kCntLd:
    case isa::Opcode::kCntSt:
      return ceil_div(instr.bytes,
                      static_cast<std::uint64_t>(arch.cnt_store_lanes));
    case isa::Opcode::kFor:
    case isa::Opcode::kEnd:
    case isa::Opcode::kBarr:
      return 0;  // dispatcher-internal; costs the dispatch cycle only
  }
  return 0;
}

PerfResult simulate_impl(const isa::Program& program, const ArchConfig& arch,
                         std::vector<TraceEvent>* sink,
                         std::size_t max_events,
                         std::uint64_t* dropped_events = nullptr) {
  program.validate();
  PerfResult result;
  std::array<UnitState, isa::kUnitCount> units;

  struct LoopFrame {
    std::size_t body_start;      // index of first body instruction
    std::uint32_t remaining;     // iterations left after the current one
  };
  std::vector<LoopFrame> loops;

  const auto& instrs = program.instructions();
  std::uint64_t now = 0;  // dispatcher clock

  std::size_t pc = 0;
  while (pc < instrs.size()) {
    const isa::Instruction& instr = instrs[pc];
    now += 1;  // dispatch cost
    ++result.instructions_dispatched;

    switch (instr.op) {
      case isa::Opcode::kFor:
        loops.push_back(LoopFrame{pc + 1, instr.count - 1});
        ++pc;
        continue;
      case isa::Opcode::kEnd:
        if (loops.empty()) {
          throw std::logic_error("perf: END without FOR");
        }
        if (loops.back().remaining > 0) {
          --loops.back().remaining;
          pc = loops.back().body_start;
        } else {
          loops.pop_back();
          ++pc;
        }
        continue;
      case isa::Opcode::kBarr: {
        for (int u = 0; u < isa::kUnitCount; ++u) {
          if (instr.mask & (1u << u)) {
            now = std::max(now, units[static_cast<std::size_t>(u)].last_end);
          }
        }
        auto& disp =
            result.units[static_cast<std::size_t>(isa::Unit::kDispatch)];
        ++disp.instructions;
        ++pc;
        continue;
      }
      default:
        break;
    }

    const auto unit_index =
        static_cast<std::size_t>(isa::unit_of(instr.op));
    UnitState& unit = units[unit_index];
    unit.retire_until(now);
    // FIFO back-pressure: wait until a slot frees.
    while (unit.inflight.size() >=
           static_cast<std::size_t>(arch.fifo_depth)) {
      now = std::max(now, unit.inflight.front());
      unit.retire_until(now);
    }
    const std::uint64_t dur = duration_of(instr, arch);
    const std::uint64_t start = std::max(now, unit.last_end);
    const std::uint64_t end = start + dur;
    unit.last_end = end;
    unit.inflight.push_back(end);

    UnitStats& stats = result.units[unit_index];
    stats.busy_cycles += dur;
    ++stats.instructions;
    if (isa::unit_of(instr.op) == isa::Unit::kDma) {
      result.dram_bytes += instr.bytes;
    }
    if (sink != nullptr) {
      if (sink->size() < max_events) {
        sink->push_back(TraceEvent{isa::unit_of(instr.op), instr.op, start,
                                   end, instr.note});
      } else if (dropped_events != nullptr) {
        ++*dropped_events;
      }
    }
    ++pc;
  }

  std::uint64_t finish = now;
  for (const UnitState& unit : units) {
    finish = std::max(finish, unit.last_end);
  }
  result.total_cycles = finish;
  result.latency_s = static_cast<double>(finish) / arch.clock_hz();
  return result;
}

}  // namespace

PerfResult simulate(const isa::Program& program, const ArchConfig& arch) {
  return simulate_impl(program, arch, nullptr, 0);
}

TracedResult simulate_traced(const isa::Program& program,
                             const ArchConfig& arch,
                             std::size_t max_events) {
  TracedResult traced;
  traced.perf = simulate_impl(program, arch, &traced.events, max_events,
                              &traced.dropped_events);
  return traced;
}

}  // namespace acoustic::perf

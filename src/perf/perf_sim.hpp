// The ACOUSTIC performance simulator (paper IV-A): executes a program
// through the distributed-control model of section III-C — a Dispatcher
// that forwards instructions to per-unit FIFOs, maintains loops and blocks
// on barriers — and reports cycles and per-unit activity without simulating
// the computation itself.
#pragma once

#include <array>
#include <cstdint>

#include "isa/program.hpp"
#include "perf/arch_config.hpp"

namespace acoustic::perf {

struct UnitStats {
  std::uint64_t busy_cycles = 0;   ///< cycles the unit spent executing
  std::uint64_t instructions = 0;  ///< instructions retired
};

struct PerfResult {
  std::uint64_t total_cycles = 0;
  double latency_s = 0.0;
  std::array<UnitStats, isa::kUnitCount> units{};
  std::uint64_t dram_bytes = 0;        ///< total DMA traffic
  std::uint64_t instructions_dispatched = 0;

  [[nodiscard]] const UnitStats& unit(isa::Unit u) const noexcept {
    return units[static_cast<std::size_t>(u)];
  }
};

/// Executes @p program on @p arch. Instruction durations:
///  * DMA ops: bytes at the DRAM interface's sustained bandwidth;
///  * ACTRNG / WGTRNG: bytes / sng_load_lanes cycles;
///  * CNTLD / CNTST: bytes / cnt_store_lanes cycles;
///  * MAC / WGTSHIFT: the instruction's cycle count;
///  * dispatch itself: one cycle per instruction (loops re-dispatch their
///    bodies every iteration, as the hardware dispatcher does).
/// Units execute their FIFOs in order; a full FIFO back-pressures the
/// dispatcher; BARR blocks dispatch until every masked unit is idle.
[[nodiscard]] PerfResult simulate(const isa::Program& program,
                                  const ArchConfig& arch);

}  // namespace acoustic::perf

// Execution timeline capture and rendering for the performance simulator.
//
// The dispatcher model of section III-C exists to overlap phases (weight
// preloading under MAC compute, SNG loads under previous passes); this
// module makes that overlap visible: simulate_traced() records every
// instruction's (unit, start, end, note) and render_gantt() draws an
// ASCII Gantt chart per control unit — the picture Fig. 2's distributed
// control is meant to produce.
#pragma once

#include <string>
#include <vector>

#include "perf/perf_sim.hpp"

namespace acoustic::perf {

/// One executed instruction instance.
struct TraceEvent {
  isa::Unit unit = isa::Unit::kDispatch;
  isa::Opcode op = isa::Opcode::kBarr;
  std::uint64_t start = 0;  ///< cycle the unit began executing
  std::uint64_t end = 0;    ///< completion cycle
  std::string note;
};

struct TracedResult {
  PerfResult perf;
  std::vector<TraceEvent> events;  ///< in dispatch order
  /// Events past max_events that were executed but NOT recorded. The
  /// renderers and the Chrome exporter surface this so a truncated trace
  /// can never pass for a complete one.
  std::uint64_t dropped_events = 0;
};

/// Like simulate(), additionally recording per-instruction events.
/// @p max_events bounds memory for pass-loop-heavy programs (recording
/// stops after the cap and dropped_events counts the overflow; the
/// PerfResult is unaffected).
[[nodiscard]] TracedResult simulate_traced(const isa::Program& program,
                                           const ArchConfig& arch,
                                           std::size_t max_events = 100000);

/// Renders the trace as an ASCII Gantt chart: one row per control unit,
/// @p columns characters wide, '#' marking busy spans.
[[nodiscard]] std::string render_gantt(const TracedResult& traced,
                                       int columns = 100);

/// Per-unit occupancy percentages, formatted.
[[nodiscard]] std::string render_utilization(const TracedResult& traced);

}  // namespace acoustic::perf

#include "perf/codegen.hpp"

#include <stdexcept>
#include <string>

namespace acoustic::perf {

namespace {

using isa::Opcode;
using isa::Unit;
using isa::unit_bit;

constexpr std::uint8_t kAllUnits =
    unit_bit(Unit::kDma) | unit_bit(Unit::kMac) | unit_bit(Unit::kActRng) |
    unit_bit(Unit::kWgtRng) | unit_bit(Unit::kCnt);

/// Emits the compute body of one layer: the pass loop plus counter
/// write-back. The pass loop body loads SNG buffers and fires the MAC
/// fabric; the dispatcher expands the loop at execution time.
void emit_compute(isa::Program& prog, const nn::LayerDesc& layer,
                  const ArchConfig& arch, const LayerMapping& m) {
  if (layer.residual) {
    // Residual connection: preload the output counters with the skip
    // activations so the block's addition happens for free (CNTLD).
    prog.cnt_ld(m.cnt_store_bytes, layer.label + " skip preload");
  }
  const isa::LoopKind loop_kind = layer.kind == nn::OpKind::kConv2D
                                      ? isa::LoopKind::kKernel
                                      : isa::LoopKind::kRow;
  prog.loop_begin(loop_kind, static_cast<std::uint32_t>(m.passes),
                  layer.label + " passes");
  prog.act_rng(m.act_rng_cycles_per_pass *
               static_cast<std::uint64_t>(arch.sng_load_lanes));
  prog.wgt_rng(m.wgt_rng_cycles_per_pass *
               static_cast<std::uint64_t>(arch.sng_load_lanes));
  if (layer.kind == nn::OpKind::kConv2D && layer.padding > 0) {
    // Edge padding: the shared shifting fabric realigns the weight SNG
    // buffers instead of reloading them (III-B "low-overhead shifting
    // fabric"); one shift step per padding column.
    prog.wgt_shift(static_cast<std::uint64_t>(layer.padding),
                   layer.label + " pad shift");
  }
  prog.mac(m.cycles_per_pass);
  prog.loop_end(loop_kind);
  prog.cnt_st(m.cnt_store_bytes, layer.label + " outputs");
}

/// Lint gate: every program codegen hands out must be structurally sound.
/// Error-severity findings are codegen bugs and throw; warnings are
/// tolerated (isolated per-layer programs legitimately read scratchpad
/// state a previous program left behind).
void lint_or_throw(const isa::Program& prog, const ArchConfig& arch,
                   const char* what) {
  const isa::analysis::Report report =
      isa::analysis::analyze(prog, {machine_limits(arch)});
  if (!report.ok()) {
    throw std::logic_error(std::string("codegen: ") + what +
                           " failed lint:\n" + report.to_string(&prog));
  }
}

}  // namespace

isa::analysis::MachineLimits machine_limits(const ArchConfig& arch) {
  isa::analysis::MachineLimits limits;
  limits.has_dram = arch.has_dram;
  limits.wgt_mem_bytes = arch.wgt_mem_bytes;
  limits.act_mem_bytes = arch.act_mem_bytes;
  limits.inst_mem_bytes = arch.inst_mem_bytes;
  return limits;
}

isa::Program generate_layer_program(const nn::LayerDesc& layer,
                                    const ArchConfig& arch,
                                    const LayerMapping& mapping,
                                    std::uint64_t preload_bytes,
                                    bool load_input, bool store_output) {
  isa::Program prog;
  if (arch.has_dram) {
    if (load_input) {
      prog.act_ld(layer.input_elems(), layer.label + " input");
    }
    if (mapping.weights_resident) {
      prog.wgt_ld(layer.weight_count(), layer.label + " weights");
    }
    if (load_input || mapping.weights_resident) {
      prog.barrier(unit_bit(Unit::kDma), "inputs resident");
    }
    if (!mapping.weights_resident) {
      // The weights exceed the weight memory: stream the transfer
      // concurrently with this layer's own MAC passes (double-buffered),
      // exactly as generate_program does for streaming layers.
      prog.wgt_ld(layer.weight_count(), layer.label + " weights (stream)");
    }
    if (preload_bytes > 0) {
      prog.wgt_ld(preload_bytes, "preload next layer");
    }
  }
  emit_compute(prog, layer, arch, mapping);
  if (arch.has_dram && store_output) {
    prog.act_st(layer.output_elems(), layer.label + " output");
  }
  prog.barrier(kAllUnits, layer.label + " done");
  lint_or_throw(prog, arch, "layer program");
  return prog;
}

CodegenResult generate_program(const nn::NetworkDesc& net,
                               const ArchConfig& arch) {
  CodegenResult result;
  result.mappings = map_network(net, arch);
  isa::Program& prog = result.program;

  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    const nn::LayerDesc& layer = net.layers[i];
    const LayerMapping& m = result.mappings[i];

    if (arch.has_dram) {
      if (i == 0) {
        // Cold start: initial activations and first-layer weights.
        prog.act_ld(layer.input_elems(), layer.label + " input");
        prog.wgt_ld(layer.weight_count(), layer.label + " weights");
        prog.barrier(unit_bit(Unit::kDma), "cold start");
      } else if (!m.weights_resident) {
        // Streaming layer: weights do not fit on chip, so the transfer
        // runs concurrently with this layer's own MAC passes (the final
        // barrier realizes latency = max(compute, transfer)).
        prog.wgt_ld(layer.weight_count(), layer.label + " weights (stream)");
      }
      if (m.act_dram_bytes > 0 && i != 0) {
        prog.act_ld(m.act_dram_bytes / 2, layer.label + " act spill in");
      }
      // Preload the next layer's weights during this layer's compute.
      if (i + 1 < net.layers.size()) {
        const LayerMapping& next = result.mappings[i + 1];
        if (next.weights_resident) {
          prog.wgt_ld(net.layers[i + 1].weight_count(),
                      net.layers[i + 1].label + " preload");
        }
      }
    }

    emit_compute(prog, layer, arch, m);

    if (arch.has_dram) {
      if (i + 1 == net.layers.size()) {
        prog.act_st(layer.output_elems(), "final output");
      } else if (m.act_dram_bytes > 0 && i != 0) {
        prog.act_st(m.act_dram_bytes / 2, layer.label + " act spill out");
      }
    }
    prog.barrier(kAllUnits, layer.label + " done");
  }
  lint_or_throw(prog, arch, "network program");
  return result;
}

}  // namespace acoustic::perf

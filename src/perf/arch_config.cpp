#include "perf/arch_config.hpp"

namespace acoustic::perf {

ArchConfig lp() {
  ArchConfig cfg;
  cfg.name = "ACOUSTIC-LP";
  cfg.rows = 32;
  cfg.subrows = 3;
  cfg.arrays = 8;
  cfg.macs_per_array = 16;
  cfg.mac_width = 96;
  cfg.clock_mhz = 200.0;
  cfg.wgt_mem_bytes = static_cast<std::uint64_t>(147.5 * 1024);
  cfg.act_mem_bytes = 600 * 1024;
  cfg.has_dram = true;
  cfg.dram = ddr3_1866();
  cfg.stream_length = 256;
  cfg.area_mm2 = 12.0;
  cfg.peak_power_w = 0.35;
  return cfg;
}

ArchConfig ulp() {
  ArchConfig cfg;
  cfg.name = "ACOUSTIC-ULP";
  // Fabric scaled so the MAC array fits the 0.18 mm^2 envelope with the
  // Fig. 5(b) area share: 8 rows x 3 sub-rows x 2 arrays x 2 MACs ~ 9k
  // product lanes (vs the LP's 1.18M).
  cfg.rows = 8;
  cfg.subrows = 3;
  cfg.arrays = 2;
  cfg.macs_per_array = 2;
  cfg.mac_width = 96;
  cfg.clock_mhz = 200.0;
  cfg.wgt_mem_bytes = 3 * 1024;
  cfg.act_mem_bytes = 2 * 1024;
  cfg.has_dram = false;
  cfg.stream_length = 128;  // Table IV uses 128-long bitstreams
  cfg.sng_load_lanes = 16;
  cfg.cnt_store_lanes = 16;
  cfg.inst_mem_bytes = 512;
  cfg.sng_provisioned_channels = 8;
  cfg.area_mm2 = 0.18;
  cfg.peak_power_w = 3e-3;
  return cfg;
}

}  // namespace acoustic::perf

// Network descriptor -> ACOUSTIC program.
//
// Emits the instruction stream the Dispatcher executes (III-C), structured
// so that the cross-phase overlap the paper describes emerges in the
// performance simulator rather than being hard-coded:
//  * weights of the next layer are WGTLD'd while the current layer's MAC
//    loop runs (when they fit the weight memory);
//  * layers whose weights exceed the weight memory (large FC layers) stream
//    their WGTLD concurrently with their own MAC passes, double-buffered;
//  * a full barrier separates layers (outputs must be in the scratchpad
//    before the next layer's SNGs read them).
#pragma once

#include "isa/analysis/analyzer.hpp"
#include "isa/program.hpp"
#include "nn/model_zoo.hpp"
#include "perf/arch_config.hpp"
#include "perf/mapping.hpp"

namespace acoustic::perf {

struct CodegenResult {
  isa::Program program;
  std::vector<LayerMapping> mappings;  ///< one per network layer
};

/// Analyzer bounds for programs targeting @p arch (memory sizes, DRAM
/// presence) — the bridge between arch_config and isa/analysis.
[[nodiscard]] isa::analysis::MachineLimits machine_limits(
    const ArchConfig& arch);

/// Generates the full-network program plus its per-layer mappings.
///
/// Every generated program is run through the ISA static analyzer against
/// @p arch before being returned; an error-severity finding throws
/// std::logic_error. Codegen bugs therefore surface as failures at
/// generation time instead of silently wrong cycle counts.
[[nodiscard]] CodegenResult generate_program(const nn::NetworkDesc& net,
                                             const ArchConfig& arch);

/// Program for a single layer in isolation (used for per-layer timing and
/// the Fig. 4 experiment). @p preload_bytes adds a WGTLD for a subsequent
/// layer that should overlap this layer's compute. Lint-gated like
/// generate_program. When the mapping marks the layer's weights
/// non-resident, the WGTLD streams concurrently with the layer's own MAC
/// passes (double-buffered) instead of being barriered up front, matching
/// generate_program's streaming path.
[[nodiscard]] isa::Program generate_layer_program(
    const nn::LayerDesc& layer, const ArchConfig& arch,
    const LayerMapping& mapping, std::uint64_t preload_bytes = 0,
    bool load_input = true, bool store_output = true);

}  // namespace acoustic::perf

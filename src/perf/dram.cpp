#include "perf/dram.hpp"

#include <cmath>

namespace acoustic::perf {

std::uint64_t DramSpec::transfer_cycles(std::uint64_t bytes,
                                        double clock_hz) const {
  if (bytes == 0) {
    return 0;
  }
  const double seconds = transfer_seconds(bytes);
  return static_cast<std::uint64_t>(std::ceil(seconds * clock_hz));
}

double DramSpec::transfer_seconds(std::uint64_t bytes) const {
  return static_cast<double>(bytes) / bandwidth_bytes_per_s;
}

double DramSpec::transfer_energy_j(std::uint64_t bytes) const {
  return static_cast<double>(bytes) * energy_pj_per_byte * 1e-12;
}

namespace {
// 64-bit channel: peak bytes/s = transfer rate (MT/s) * 8 bytes.
DramSpec ddr3(const char* name, double mts) {
  // Horowitz (ISSCC'14): DRAM access ~20 pJ/bit => 160 pJ/byte.
  return DramSpec{name, mts * 1e6 * 8.0, 160.0};
}
}  // namespace

DramSpec ddr3_800() { return ddr3("DDR3-800", 800); }
DramSpec ddr3_1066() { return ddr3("DDR3-1066", 1066); }
DramSpec ddr3_1333() { return ddr3("DDR3-1333", 1333); }
DramSpec ddr3_1600() { return ddr3("DDR3-1600", 1600); }
DramSpec ddr3_1866() { return ddr3("DDR3-1866", 1866); }
DramSpec ddr3_2133() { return ddr3("DDR3-2133", 2133); }

DramSpec hbm() {
  // First-generation HBM stack: 128 GB/s, ~4 pJ/bit => 32 pJ/byte.
  return DramSpec{"HBM", 128.0e9, 32.0};
}

std::vector<DramSpec> figure4_interfaces() {
  return {ddr3_800(),  ddr3_1066(), ddr3_1333(), ddr3_1600(),
          ddr3_1866(), ddr3_2133(), hbm()};
}

}  // namespace acoustic::perf

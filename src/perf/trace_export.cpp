#include "perf/trace_export.hpp"

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace acoustic::perf {

void export_metrics(const PerfResult& result, obs::Registry& registry) {
  registry.add("perf.total_cycles", result.total_cycles);
  registry.add("perf.instructions_dispatched",
               result.instructions_dispatched);
  registry.add("perf.dram_bytes", result.dram_bytes);
  for (int u = 0; u < isa::kUnitCount; ++u) {
    const auto unit = static_cast<isa::Unit>(u);
    const UnitStats& stats = result.units[static_cast<std::size_t>(u)];
    if (stats.instructions == 0 && stats.busy_cycles == 0) {
      continue;
    }
    const std::string prefix = "perf.unit." + isa::unit_name(unit);
    registry.add(prefix + ".busy_cycles", stats.busy_cycles);
    registry.add(prefix + ".instructions", stats.instructions);
  }
}

void to_chrome_trace(const TracedResult& traced, const ArchConfig& arch,
                     obs::ChromeTraceWriter& writer, int pid) {
  writer.set_process_name(pid, "perf-sim (" + arch.name + ")");
  std::array<bool, isa::kUnitCount> named{};
  for (const TraceEvent& event : traced.events) {
    const auto tid = static_cast<int>(event.unit);
    if (!named[static_cast<std::size_t>(tid)]) {
      writer.set_thread_name(pid, tid, isa::unit_name(event.unit));
      named[static_cast<std::size_t>(tid)] = true;
    }
    std::vector<std::pair<std::string, std::string>> args;
    if (!event.note.empty()) {
      args.emplace_back("note", obs::json_quote(event.note));
    }
    // Cycle timebase: ts/dur carry cycles verbatim. Zero-duration
    // dispatch-internal events still get their dispatch point.
    writer.add_complete(pid, tid, isa::mnemonic(event.op), "isa",
                        static_cast<double>(event.start),
                        static_cast<double>(event.end - event.start),
                        std::move(args));
  }
  writer.set_metadata("timebase", "\"cycles\"");
  writer.set_metadata("clock_mhz", obs::json_number(arch.clock_mhz));
  writer.set_metadata("total_cycles",
                      obs::json_number(traced.perf.total_cycles));
  writer.set_metadata("dropped_events",
                      obs::json_number(traced.dropped_events));
  writer.set_metadata("recorded_events",
                      obs::json_number(
                          static_cast<std::uint64_t>(traced.events.size())));
}

}  // namespace acoustic::perf

#include "perf/mapping.hpp"

#include <algorithm>

namespace acoustic::perf {

namespace {

LayerMapping map_conv(const nn::LayerDesc& l, const ArchConfig& a) {
  LayerMapping m;
  const std::uint64_t pool = l.pool > 1 ? static_cast<std::uint64_t>(l.pool) : 1;
  const std::uint64_t pool_sq = pool * pool;
  const int keff = std::min(l.kernel, 3);
  const std::uint64_t kchunk = ceil_div(static_cast<std::uint64_t>(l.kernel), 3);
  const int cpm = a.channels_per_mac(keff);

  const int depth = l.channels_per_group();
  const std::uint64_t rf =
      static_cast<std::uint64_t>(l.kernel) * l.kernel * depth;
  const std::uint64_t positions =
      static_cast<std::uint64_t>(l.out_h()) * static_cast<std::uint64_t>(l.out_w());

  if (rf <= static_cast<std::uint64_t>(a.mac_width)) {
    // Packed mode: the whole receptive field fits one 96:1 MAC, so the
    // configurable fabric assigns one MAC per output position. Arrays
    // share weights, so an array's M MACs must compute positions of the
    // same kernel; idle arrays take extra positions of other kernels.
    const std::uint64_t total_arrays =
        static_cast<std::uint64_t>(a.rows) * a.subrows * a.arrays;
    const std::uint64_t kernels_per_pass =
        std::min<std::uint64_t>(static_cast<std::uint64_t>(l.out_c),
                                total_arrays);
    const std::uint64_t arrays_per_kernel =
        std::max<std::uint64_t>(1, total_arrays / kernels_per_pass);
    const std::uint64_t pos_per_pass =
        arrays_per_kernel * static_cast<std::uint64_t>(a.macs_per_array);
    m.passes = ceil_div(positions, pos_per_pass) *
               ceil_div(static_cast<std::uint64_t>(l.out_c), kernels_per_pass);
  } else if (ceil_div(ceil_div(rf, static_cast<std::uint64_t>(a.mac_width)),
                      static_cast<std::uint64_t>(a.subrows)) <=
             static_cast<std::uint64_t>(a.arrays)) {
    // Sliced mode: the receptive field spans a few MACs, ganged across
    // sub-rows (kernel rows) and, if needed, across arrays. Remaining
    // arrays take more output positions.
    const std::uint64_t slices =
        ceil_div(rf, static_cast<std::uint64_t>(a.mac_width));
    const std::uint64_t array_groups =
        ceil_div(slices, static_cast<std::uint64_t>(a.subrows));
    const std::uint64_t pos_per_pass =
        (static_cast<std::uint64_t>(a.arrays) / array_groups) *
        static_cast<std::uint64_t>(a.macs_per_array);
    const std::uint64_t kern_passes =
        ceil_div(static_cast<std::uint64_t>(l.out_c),
                 static_cast<std::uint64_t>(a.rows));
    m.passes = ceil_div(positions, pos_per_pass) * kern_passes;
  } else {
    // Deep layers: sub-rows carry kernel rows, MACs multiplex kernel
    // columns x 96/kw channels, extra channels and >3x3 kernels take
    // further passes accumulated in the (non-reset) counters.
    const std::uint64_t ch_passes = ceil_div(
        static_cast<std::uint64_t>(depth), static_cast<std::uint64_t>(cpm));
    const std::uint64_t kern_passes =
        ceil_div(static_cast<std::uint64_t>(l.out_c),
                 static_cast<std::uint64_t>(a.rows));
    const std::uint64_t pos_passes = ceil_div(
        positions, static_cast<std::uint64_t>(a.positions_per_pass()));
    m.passes = ch_passes * kern_passes * pos_passes * kchunk * kchunk;
  }
  // Conv layers process batch samples sequentially (activations differ,
  // weights stay resident): whole-batch cost scales linearly.
  m.passes *= static_cast<std::uint64_t>(std::max(1, a.batch));
  m.cycles_per_pass = std::max<std::uint64_t>(1, a.stream_length / pool_sq);
  m.mac_cycles = m.passes * m.cycles_per_pass;

  // Operand-gated useful work: every MAC of the layer evaluated over the
  // (skipping-shortened) stream, scaled by the expected nonzero-activation
  // fraction (zero inputs gate the AND multipliers).
  m.product_bits = static_cast<std::uint64_t>(
      static_cast<double>(l.macs()) *
      static_cast<double>(std::max<std::uint64_t>(
          1, a.stream_length / pool_sq)) *
      static_cast<double>(std::max(1, a.batch)) * a.activation_density);
  const double lane_cycles = static_cast<double>(m.mac_cycles) *
                             static_cast<double>(a.total_mac_lanes());
  m.utilization =
      lane_cycles > 0.0 ? static_cast<double>(m.product_bits) / lane_cycles : 0.0;

  // SNG buffer loads per pass: weights for the kernels resident in a pass,
  // activations for the output positions' receptive-field slice (adjacent
  // positions share all but one kernel column of activations). Both are
  // capped by what the layer actually provides (unused lanes stay empty
  // and, being zero, are operand-gated).
  const std::uint64_t wgt_elems_per_pass =
      std::min<std::uint64_t>(static_cast<std::uint64_t>(a.rows), l.out_c) *
      keff * keff * std::min(cpm, depth);
  const std::uint64_t act_elems_per_pass =
      std::min<std::uint64_t>(
          static_cast<std::uint64_t>(a.positions_per_pass()), positions) *
      std::min(cpm, depth) * keff;
  m.wgt_rng_cycles_per_pass =
      ceil_div(wgt_elems_per_pass, static_cast<std::uint64_t>(a.sng_load_lanes));
  m.act_rng_cycles_per_pass =
      ceil_div(act_elems_per_pass, static_cast<std::uint64_t>(a.sng_load_lanes));

  // Stream generation statistics (per-bit SNG energy): weight SNGs run for
  // every pass, activation SNGs likewise.
  m.wgt_stream_bits = wgt_elems_per_pass * m.passes * m.cycles_per_pass;
  m.act_stream_bits = act_elems_per_pass * m.passes * m.cycles_per_pass;
  m.counter_bits = positions * static_cast<std::uint64_t>(l.out_c) *
                   std::max<std::uint64_t>(1, a.stream_length / pool_sq) *
                   static_cast<std::uint64_t>(std::max(1, a.batch));

  m.cnt_store_bytes = l.output_elems() *
                      static_cast<std::uint64_t>(std::max(1, a.batch));
  m.act_sram_bytes = act_elems_per_pass * m.passes;
  return m;
}

LayerMapping map_dense(const nn::LayerDesc& l, const ArchConfig& a) {
  LayerMapping m;
  // FC: no weight reuse, so one MAC per array carries distinct weights
  // (III-B); a group of ceil(in/96) MACs covers one output.
  const std::uint64_t available_macs =
      static_cast<std::uint64_t>(a.rows) * a.subrows * a.arrays;
  const std::uint64_t macs_per_output =
      ceil_div(static_cast<std::uint64_t>(l.in_c),
               static_cast<std::uint64_t>(a.mac_width));
  const std::uint64_t outputs_per_pass = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(l.out_c),
      std::max<std::uint64_t>(1, available_macs / macs_per_output));
  const std::uint64_t in_passes =
      macs_per_output > available_macs
          ? ceil_div(macs_per_output, available_macs)
          : 1;
  // Batching: up to M samples share each weight load (the M MACs of an
  // array carry the same weights), so the whole batch needs
  // ceil(batch / M) sequential FC sweeps.
  const std::uint64_t batch = static_cast<std::uint64_t>(std::max(1, a.batch));
  const std::uint64_t samples_per_sweep = std::min<std::uint64_t>(
      batch, static_cast<std::uint64_t>(a.macs_per_array));
  const std::uint64_t fc_sweeps = ceil_div(batch, samples_per_sweep);
  m.passes = ceil_div(static_cast<std::uint64_t>(l.out_c), outputs_per_pass) *
             in_passes * fc_sweeps;
  m.cycles_per_pass = a.stream_length;
  m.mac_cycles = m.passes * m.cycles_per_pass;
  m.product_bits = static_cast<std::uint64_t>(
      static_cast<double>(l.macs()) * static_cast<double>(a.stream_length) *
      static_cast<double>(batch) * a.activation_density);
  const double lane_cycles = static_cast<double>(m.mac_cycles) *
                             static_cast<double>(a.total_mac_lanes());
  m.utilization =
      lane_cycles > 0.0 ? static_cast<double>(m.product_bits) / lane_cycles : 0.0;

  const std::uint64_t wgt_elems_per_pass =
      std::min<std::uint64_t>(outputs_per_pass * l.in_c,
                              available_macs * a.mac_width);
  const std::uint64_t act_elems_per_pass =
      std::min<std::uint64_t>(l.in_c, available_macs * a.mac_width);
  m.wgt_rng_cycles_per_pass =
      ceil_div(wgt_elems_per_pass, static_cast<std::uint64_t>(a.sng_load_lanes));
  m.act_rng_cycles_per_pass =
      ceil_div(act_elems_per_pass, static_cast<std::uint64_t>(a.sng_load_lanes));
  m.wgt_stream_bits = l.weight_count() * a.stream_length * fc_sweeps;
  m.act_stream_bits = act_elems_per_pass * m.passes * a.stream_length;
  m.counter_bits =
      static_cast<std::uint64_t>(l.out_c) * a.stream_length * batch;
  m.cnt_store_bytes = l.output_elems() * batch;
  m.act_sram_bytes = act_elems_per_pass * m.passes;
  return m;
}

}  // namespace

LayerMapping map_layer(const nn::LayerDesc& layer, const ArchConfig& arch,
                       bool first_layer, bool last_layer) {
  LayerMapping m = layer.kind == nn::OpKind::kConv2D ? map_conv(layer, arch)
                                                      : map_dense(layer, arch);
  // Weight traffic: every layer's weights come from DRAM once (streamed
  // continuously when they exceed the weight memory — same total bytes,
  // but the layer can no longer hide the transfer behind earlier compute).
  m.wgt_dram_bytes = arch.has_dram ? layer.weight_count() : 0;
  m.weights_resident = layer.weight_count() <= arch.wgt_mem_bytes;

  // Activation traffic: first input load, last output store, plus spills
  // whenever a layer's input+output set exceeds the activation memory.
  const std::uint64_t batch =
      static_cast<std::uint64_t>(std::max(1, arch.batch));
  std::uint64_t act_bytes = 0;
  if (arch.has_dram) {
    if (first_layer) {
      act_bytes += layer.input_elems();
    }
    if (last_layer) {
      act_bytes += layer.output_elems();
    }
    if ((layer.input_elems() + layer.output_elems()) * batch >
        arch.act_mem_bytes) {
      act_bytes += layer.input_elems() + layer.output_elems();
    }
  }
  m.act_dram_bytes = act_bytes * batch;
  return m;
}

std::vector<LayerMapping> map_network(const nn::NetworkDesc& net,
                                      const ArchConfig& arch) {
  std::vector<LayerMapping> out;
  out.reserve(net.layers.size());
  for (std::size_t i = 0; i < net.layers.size(); ++i) {
    out.push_back(map_layer(net.layers[i], arch, i == 0,
                            i + 1 == net.layers.size()));
  }
  return out;
}

}  // namespace acoustic::perf

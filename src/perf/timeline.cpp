#include "perf/timeline.hpp"

#include <algorithm>
#include <cstdio>

namespace acoustic::perf {

std::string render_gantt(const TracedResult& traced, int columns) {
  const std::uint64_t total = std::max<std::uint64_t>(
      traced.perf.total_cycles, 1);
  const auto col_of = [&](std::uint64_t cycle) {
    return static_cast<int>(cycle * static_cast<std::uint64_t>(columns) /
                            total);
  };
  std::string out;
  for (int u = 0; u < isa::kUnitCount; ++u) {
    const auto unit = static_cast<isa::Unit>(u);
    if (unit == isa::Unit::kDispatch) {
      continue;  // dispatch events carry no duration
    }
    std::string row(static_cast<std::size_t>(columns), '.');
    for (const TraceEvent& e : traced.events) {
      if (e.unit != unit || e.end == e.start) {
        continue;
      }
      const int a = col_of(e.start);
      const int b = std::max(col_of(e.end - 1), a);
      for (int c = a; c <= b && c < columns; ++c) {
        row[static_cast<std::size_t>(c)] = '#';
      }
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%-8s |",
                  isa::unit_name(unit).c_str());
    out += label;
    out += row;
    out += "|\n";
  }
  char footer[128];
  std::snprintf(footer, sizeof(footer),
                "%-8s 0%*llu cycles\n", "", columns,
                static_cast<unsigned long long>(total));
  out += footer;
  if (traced.dropped_events > 0) {
    char warn[128];
    std::snprintf(warn, sizeof(warn),
                  "WARNING: trace truncated — %llu event(s) dropped after "
                  "the recording cap\n",
                  static_cast<unsigned long long>(traced.dropped_events));
    out += warn;
  }
  return out;
}

std::string render_utilization(const TracedResult& traced) {
  std::string out;
  const double total =
      static_cast<double>(std::max<std::uint64_t>(
          traced.perf.total_cycles, 1));
  for (int u = 0; u < isa::kUnitCount; ++u) {
    const auto unit = static_cast<isa::Unit>(u);
    if (unit == isa::Unit::kDispatch) {
      continue;
    }
    const auto& stats = traced.perf.units[static_cast<std::size_t>(u)];
    char line[96];
    std::snprintf(line, sizeof(line), "  %-8s %6.1f%% busy (%llu instr)\n",
                  isa::unit_name(unit).c_str(),
                  100.0 * static_cast<double>(stats.busy_cycles) / total,
                  static_cast<unsigned long long>(stats.instructions));
    out += line;
  }
  if (traced.dropped_events > 0) {
    char warn[128];
    std::snprintf(warn, sizeof(warn),
                  "  (occupancy is exact; the event list itself dropped "
                  "%llu event(s))\n",
                  static_cast<unsigned long long>(traced.dropped_events));
    out += warn;
  }
  return out;
}

}  // namespace acoustic::perf

// Parametrization of the ACOUSTIC accelerator (paper section III-D).
//
// The compute engine is hierarchical (Fig. 3): fixed 96:1 OR-accumulating
// MAC units; M MACs with partially-shared inputs and shared weights form a
// MAC array; A arrays form a sub-row sharing one activation scratchpad;
// S sub-rows form a row (one kernel); R rows run in parallel on shared
// activations. Two calibrated instances are provided: LP (mobile SoC
// class, 12 mm^2 / 0.35 W) and ULP (sensor class, 0.18 mm^2 / 3 mW).
#pragma once

#include <cstdint>
#include <string>

#include "perf/dram.hpp"

namespace acoustic::perf {

struct ArchConfig {
  std::string name;

  // Fabric hierarchy (Fig. 3).
  int rows = 32;            ///< R: kernels computed in parallel
  int subrows = 3;          ///< S: kernel rows (3x3 native support)
  int arrays = 8;           ///< A: MAC arrays per sub-row
  int macs_per_array = 16;  ///< M: MACs (output positions) per array
  int mac_width = 96;       ///< inputs reduced by one MAC unit

  double clock_mhz = 200.0;

  /// Inference batch size. Batching lets FC layers reuse streamed weights:
  /// the M MACs of an array share weights, so up to M batch samples
  /// compute in parallel per weight load (III-B: "FC layers cannot re-use
  /// weights without employing batching"), and each weight crosses DRAM
  /// once per batch instead of once per frame. Activation memory must hold
  /// the batch (III-D: "activation memory can be sized up to support
  /// larger batch sizes if desired").
  int batch = 1;

  // On-chip memories.
  std::uint64_t wgt_mem_bytes = 0;
  std::uint64_t act_mem_bytes = 0;
  std::uint64_t inst_mem_bytes = 4096;

  // External memory (ULP omits DRAM support entirely, III-D).
  bool has_dram = true;
  DramSpec dram;

  // SC configuration: total temporal split-unipolar stream length
  // ("256 long stream implies 128x2").
  std::uint64_t stream_length = 256;

  // Load/store port widths (elements per cycle) of the SNG buffer loaders
  // and the counter write-back path.
  int sng_load_lanes = 128;
  int cnt_store_lanes = 128;

  // Instruction FIFO depth of each control unit (III-C "small FIFO").
  int fifo_depth = 8;

  /// Expected fraction of nonzero activations (1.0 = dense). ACOUSTIC's
  /// AND multipliers operand-gate zero inputs (III-B: "unused MACs and
  /// SNGs do not contribute to dynamic energy"), so post-ReLU sparsity
  /// scales the *dynamic* compute energy without changing latency (the
  /// pass schedule is static). Set from profiled activations; 1.0 keeps
  /// the conservative dense estimate used in the headline tables.
  double activation_density = 1.0;

  // Channels per MAC the SNG banks are physically provisioned for
  // (0 = full channels_per_mac(3)). The ULP variant provisions fewer to
  // fit its area/power envelope — its workloads are shallow.
  int sng_provisioned_channels = 0;

  [[nodiscard]] int sng_channels() const noexcept {
    const int full = mac_width / 3;
    return sng_provisioned_channels > 0
               ? (sng_provisioned_channels < full ? sng_provisioned_channels
                                                  : full)
               : full;
  }

  // Published physical envelope (area/power scale the energy model).
  double area_mm2 = 0.0;
  double peak_power_w = 0.0;

  [[nodiscard]] double clock_hz() const noexcept { return clock_mhz * 1e6; }

  /// Product lanes active per cycle at full utilization:
  /// R * S * A * M * mac_width.
  [[nodiscard]] std::uint64_t total_mac_lanes() const noexcept {
    return static_cast<std::uint64_t>(rows) * subrows * arrays *
           macs_per_array * mac_width;
  }

  /// Output positions one pass covers (A * M MACs per kernel).
  [[nodiscard]] int positions_per_pass() const noexcept {
    return arrays * macs_per_array;
  }

  /// Input channels one 96:1 MAC covers for a kernel of width @p kernel_w
  /// (sub-rows handle kernel rows; the MAC multiplexes kernel columns).
  [[nodiscard]] int channels_per_mac(int kernel_w) const noexcept {
    const int kw = kernel_w < 1 ? 1 : (kernel_w > 3 ? 3 : kernel_w);
    return mac_width / kw;
  }
};

/// Low-power variant (Table III): 12 mm^2, 0.35 W, 200 MHz, 147.5 KB weight
/// memory, 600 KB activation memory, DDR3-1866 external interface.
[[nodiscard]] ArchConfig lp();

/// Ultra-low-power variant (Table IV): 0.18 mm^2, 3 mW, 200 MHz, 3 KB
/// weight + 2 KB activation memory, no DRAM, scaled-down fabric.
[[nodiscard]] ArchConfig ulp();

}  // namespace acoustic::perf

// Mapping of network layers onto the ACOUSTIC compute fabric.
//
// The paper omits the full mapping algorithm ("we omit detailed
// explanations ... for brevity"); this model is the simplest mapping
// consistent with everything section III-B does state:
//  * R rows <=> R kernels (output channels) in parallel on shared
//    activations;
//  * S=3 sub-rows <=> kernel rows, 3x3 supported natively, larger kernels
//    split into <=3x3 chunks with activation reloading;
//  * one 96:1 MAC covers kernel-width x (96/kernel-width) input channels,
//    deeper inputs take multiple channel passes accumulated in the output
//    counters (counters are not reset, so no partial-sum conversion);
//  * A x M MACs <=> A*M output positions per pass (the configurable fabric
//    assigns positions anywhere in the output plane);
//  * pooling with computation skipping shortens each pass by the pooling
//    window size (II-C);
//  * FC layers cannot reuse weights, so only one MAC per array carries
//    distinct weights; outputs spread across row groups (III-B).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/model_zoo.hpp"
#include "perf/arch_config.hpp"

namespace acoustic::perf {

/// Where a layer's working set lives and what it costs to compute.
struct LayerMapping {
  // Compute.
  std::uint64_t passes = 0;            ///< MAC fabric activations
  std::uint64_t cycles_per_pass = 0;   ///< stream bits per pass (skipping-adjusted)
  std::uint64_t mac_cycles = 0;        ///< passes * cycles_per_pass
  double utilization = 0.0;            ///< useful product-bits / lane-cycles
  std::uint64_t product_bits = 0;      ///< operand-gated AND-gate work (energy)

  // SNG buffer loading (cycles on the ACTRNG / WGTRNG units per pass).
  std::uint64_t act_rng_cycles_per_pass = 0;
  std::uint64_t wgt_rng_cycles_per_pass = 0;

  // Data movement.
  std::uint64_t wgt_dram_bytes = 0;    ///< weight traffic from DRAM
  std::uint64_t act_dram_bytes = 0;    ///< activation spill traffic (0 if resident)
  std::uint64_t cnt_store_bytes = 0;   ///< counter write-back to scratchpad
  std::uint64_t act_sram_bytes = 0;    ///< scratchpad reads feeding the SNGs
  bool weights_resident = false;       ///< layer weights fit weight memory

  // Stream statistics for the energy model.
  std::uint64_t act_stream_bits = 0;   ///< activation SNG bits generated
  std::uint64_t wgt_stream_bits = 0;   ///< weight SNG bits generated
  std::uint64_t counter_bits = 0;      ///< bits entering activation counters
};

/// Maps one layer. @p first_layer / @p last_layer control whether input /
/// output activations cross DRAM (intermediate activations stay on chip
/// when they fit act_mem_bytes).
[[nodiscard]] LayerMapping map_layer(const nn::LayerDesc& layer,
                                     const ArchConfig& arch,
                                     bool first_layer = false,
                                     bool last_layer = false);

/// Maps every layer of a network.
[[nodiscard]] std::vector<LayerMapping> map_network(
    const nn::NetworkDesc& net, const ArchConfig& arch);

/// Integer ceiling division helper shared by the perf models.
[[nodiscard]] constexpr std::uint64_t ceil_div(std::uint64_t a,
                                               std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

}  // namespace acoustic::perf

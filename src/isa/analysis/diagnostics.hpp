// Structured diagnostics for the ISA static analyzer.
//
// A Diagnostic pins one finding to one instruction: a stable kebab-case
// rule ID (what invariant was violated), a severity (whether the program
// is broken or merely suspicious), the instruction index it anchors to,
// and a human-readable message. A Report aggregates the findings of one
// analyzer run and renders them in a compiler-style text form.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "isa/program.hpp"

namespace acoustic::isa::analysis {

enum class Severity : std::uint8_t {
  kWarning,  ///< suspicious but executable (lint finding)
  kError,    ///< structurally broken; timing it would be meaningless
};

[[nodiscard]] std::string severity_name(Severity severity);

/// Index value for findings that concern the whole program rather than a
/// single instruction (e.g. instruction-memory overflow).
inline constexpr std::size_t kWholeProgram = static_cast<std::size_t>(-1);

struct Diagnostic {
  std::string rule;          ///< stable rule ID, e.g. "loop-balance"
  Severity severity = Severity::kWarning;
  std::size_t index = kWholeProgram;  ///< instruction index in the program
  std::string message;

  /// One line: "#12 MAC: error [mac-uninit] ...". @p program (optional)
  /// supplies the mnemonic.
  [[nodiscard]] std::string to_string(const Program* program = nullptr) const;
};

/// The findings of one analyzer run over one program.
class Report {
 public:
  void add(std::string rule, Severity severity, std::size_t index,
           std::string message);

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  [[nodiscard]] std::size_t error_count() const noexcept;
  [[nodiscard]] std::size_t warning_count() const noexcept;

  /// No findings at all (the bar codegen-emitted programs are held to).
  [[nodiscard]] bool clean() const noexcept { return diags_.empty(); }
  /// No error-severity findings (warnings allowed).
  [[nodiscard]] bool ok() const noexcept { return error_count() == 0; }

  /// True if any finding carries @p rule.
  [[nodiscard]] bool has_rule(std::string_view rule) const noexcept;

  /// Compiler-style rendering, one finding per line plus a summary line.
  [[nodiscard]] std::string to_string(const Program* program = nullptr) const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace acoustic::isa::analysis

// Structured diagnostics for the ISA static analyzer.
//
// The vocabulary (Diagnostic, Severity, Report) is the shared engine in
// core/diagnostics.hpp; this header rebases the ISA analyzer on it and adds
// the one piece of domain knowledge the shared engine cannot have: anchor
// rendering that decorates an instruction index with its mnemonic
// ("#12 MAC: error [mac-uninit] ...").
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "core/diagnostics.hpp"
#include "isa/program.hpp"

namespace acoustic::isa::analysis {

using Severity = core::Severity;
using core::severity_name;
using Diagnostic = core::Diagnostic;

/// Index value for findings that concern the whole program rather than a
/// single instruction (e.g. instruction-memory overflow).
inline constexpr std::size_t kWholeProgram = core::kNoIndex;

/// One line: "#12 MAC: error [mac-uninit] ...". @p program (optional)
/// supplies the mnemonic.
[[nodiscard]] std::string to_string(const Diagnostic& diagnostic,
                                    const Program* program = nullptr);

/// The findings of one analyzer run over one program: the shared report
/// with program-aware rendering layered on top.
class Report : public core::Report {
 public:
  /// Compiler-style rendering, one finding per line plus a summary line.
  [[nodiscard]] std::string to_string(const Program* program = nullptr) const;
};

}  // namespace acoustic::isa::analysis

#include "isa/analysis/analyzer.hpp"

#include <string>
#include <vector>

namespace acoustic::isa::analysis {

namespace {

// Mirrors the operand format of isa/encoding.cpp: 24-bit mantissa with a
// 2-bit byte-shift exponent, value = mantissa << (8 * exp).
constexpr std::uint64_t kMantissaMax = (1ull << 24) - 1;
constexpr std::uint64_t kCountMax = (1ull << 24) - 1;
constexpr std::uint64_t kOperandMax = kMantissaMax << 24;

enum class OperandFit { kExact, kRounded, kOverflow };

OperandFit operand_fit(std::uint64_t value) {
  for (unsigned exp = 0; exp < 4; ++exp) {
    const unsigned shift = 8 * exp;
    if ((value >> shift) <= kMantissaMax &&
        ((value >> shift) << shift) == value) {
      return OperandFit::kExact;
    }
  }
  return value > kOperandMax ? OperandFit::kOverflow : OperandFit::kRounded;
}

std::size_t npos() { return static_cast<std::size_t>(-1); }

}  // namespace

Report analyze(const Program& program, const AnalyzerOptions& options) {
  Report report;
  const auto& instrs = program.instructions();
  const MachineLimits& limits = options.limits;
  const std::size_t n = instrs.size();

  // Backward pre-pass: for each index, whether any WGTRNG follows it, the
  // next MAC, and the next BARR covering the DMA unit. A DMA load is
  // "resident-intent" when the program synchronizes on it (BARR with the
  // DMA bit) before issuing any further MAC — only those loads must fit
  // on chip; streaming loads overlap compute double-buffered.
  std::vector<bool> wgtrng_after(n, false);
  std::vector<std::size_t> next_mac(n, npos());
  std::vector<std::size_t> next_dma_barr(n, npos());
  {
    bool seen_wgtrng = false;
    std::size_t mac_at = npos();
    std::size_t barr_at = npos();
    for (std::size_t i = n; i-- > 0;) {
      wgtrng_after[i] = seen_wgtrng;
      next_mac[i] = mac_at;
      next_dma_barr[i] = barr_at;
      const Instruction& instr = instrs[i];
      if (instr.op == Opcode::kWgtRng) {
        seen_wgtrng = true;
      } else if (instr.op == Opcode::kMac) {
        mac_at = i;
      } else if (instr.op == Opcode::kBarr &&
                 (instr.mask & unit_bit(Unit::kDma)) != 0) {
        barr_at = i;
      }
    }
  }

  struct LoopFrame {
    LoopKind kind;
    std::size_t index;
  };
  std::vector<LoopFrame> loops;

  bool seen_actrng = false;
  bool seen_wgtrng = false;
  bool scratchpad_written = false;  // ACTLD or CNTST so far
  bool counters_dirty = false;      // MAC since the last CNTST
  bool counters_fed = false;        // MAC or CNTLD since the last CNTST
  std::size_t unsynced_cntst = npos();  // CNTST with no BARR(CNT) yet

  for (std::size_t i = 0; i < n; ++i) {
    const Instruction& instr = instrs[i];

    // Operand representability in the 64-bit instruction word.
    if (instr.op != Opcode::kFor && instr.op != Opcode::kEnd &&
        instr.op != Opcode::kBarr) {
      const std::uint64_t operand =
          (instr.op == Opcode::kMac || instr.op == Opcode::kWgtShift)
              ? instr.cycles
              : instr.bytes;
      switch (operand_fit(operand)) {
        case OperandFit::kExact:
          break;
        case OperandFit::kRounded:
          report.add("operand-inexact", Severity::kWarning, i,
                     "operand " + std::to_string(operand) +
                         " is not exactly representable in the encoding's "
                         "mantissa/exponent format and would round up");
          break;
        case OperandFit::kOverflow:
          report.add("operand-range", Severity::kError, i,
                     "operand " + std::to_string(operand) +
                         " exceeds the instruction word's operand range");
          break;
      }
    }

    switch (instr.op) {
      case Opcode::kFor:
        if (instr.count == 0) {
          report.add("loop-trip-zero", Severity::kError, i,
                     "FOR with zero trip count (the dispatcher has no "
                     "zero-iteration path)");
        }
        if (instr.count > kCountMax) {
          report.add("loop-trip-range", Severity::kError, i,
                     "trip count " + std::to_string(instr.count) +
                         " exceeds the encoding's 24-bit count field");
        }
        loops.push_back(LoopFrame{instr.loop, i});
        break;

      case Opcode::kEnd:
        if (loops.empty()) {
          report.add("loop-balance", Severity::kError, i,
                     std::string("END") + loop_suffix(instr.loop) +
                         " without an open FOR");
        } else if (loops.back().kind != instr.loop) {
          report.add("loop-balance", Severity::kError, i,
                     std::string("END") + loop_suffix(instr.loop) +
                         " closes FOR" + loop_suffix(loops.back().kind) +
                         " opened at #" + std::to_string(loops.back().index));
          loops.pop_back();
        } else {
          if (loops.back().index + 1 == i) {
            report.add("loop-empty", Severity::kWarning, loops.back().index,
                       "loop body is empty");
          }
          loops.pop_back();
        }
        break;

      case Opcode::kBarr:
        if (instr.mask == 0) {
          report.add("barr-noop", Severity::kWarning, i,
                     "barrier with an empty unit mask waits on nothing");
        }
        if ((instr.mask >> kUnitCount) != 0) {
          report.add("barr-unknown-unit", Severity::kWarning, i,
                     "barrier mask has bits beyond the defined units");
        }
        if ((instr.mask & unit_bit(Unit::kCnt)) != 0) {
          unsynced_cntst = npos();
        }
        break;

      case Opcode::kMac:
        if (!seen_actrng || !seen_wgtrng) {
          report.add("mac-uninit", Severity::kError, i,
                     std::string("MAC before any ") +
                         (!seen_actrng ? "ACTRNG" : "WGTRNG") +
                         " loaded the SNG buffers");
        }
        counters_dirty = true;
        counters_fed = true;
        break;

      case Opcode::kActRng:
        if (limits.has_dram && !scratchpad_written) {
          report.add("actrng-uninit", Severity::kWarning, i,
                     "ACTRNG reads the activation scratchpad before any "
                     "ACTLD or CNTST wrote it");
        }
        if (unsynced_cntst != npos()) {
          report.add("swap-unsync", Severity::kError, i,
                     "ACTRNG after the CNTST at #" +
                         std::to_string(unsynced_cntst) +
                         " with no barrier on the counter unit: the "
                         "scratchpad swap is unsynchronized");
        }
        seen_actrng = true;
        break;

      case Opcode::kWgtRng:
      case Opcode::kWgtShift:
        if (instr.op == Opcode::kWgtRng) {
          seen_wgtrng = true;
        }
        break;

      case Opcode::kCntLd:
        if (counters_dirty) {
          report.add("cnt-load-clobber", Severity::kError, i,
                     "CNTLD would overwrite MAC results not yet drained by "
                     "a CNTST");
        }
        counters_fed = true;
        break;

      case Opcode::kCntSt:
        if (!counters_fed) {
          report.add("cnt-store-empty", Severity::kWarning, i,
                     "CNTST with no MAC or CNTLD since the previous store "
                     "drains empty counters");
        }
        counters_dirty = false;
        counters_fed = false;
        scratchpad_written = true;
        unsynced_cntst = i;
        break;

      case Opcode::kActLd:
      case Opcode::kActSt:
      case Opcode::kWgtLd:
        if (!limits.has_dram) {
          report.add("dma-no-dram", Severity::kError, i,
                     mnemonic(instr.op) +
                         " on a configuration without external memory");
          break;
        }
        if (instr.op == Opcode::kActLd) {
          scratchpad_written = true;
        }
        if (instr.op == Opcode::kWgtLd && !wgtrng_after[i]) {
          report.add("wgt-dead-store", Severity::kWarning, i,
                     "weights are loaded but no later WGTRNG ever moves "
                     "them into SNG buffers");
        }
        // Address bounds for resident-intent loads.
        if (instr.op == Opcode::kActLd || instr.op == Opcode::kWgtLd) {
          const bool resident_intent = next_dma_barr[i] < next_mac[i];
          const std::uint64_t bound = instr.op == Opcode::kWgtLd
                                          ? limits.wgt_mem_bytes
                                          : limits.act_mem_bytes;
          if (resident_intent && bound > 0 && instr.bytes > bound) {
            report.add(instr.op == Opcode::kWgtLd ? "wgt-resident-overflow"
                                                  : "act-resident-overflow",
                       Severity::kError, i,
                       mnemonic(instr.op) + " of " +
                           std::to_string(instr.bytes) +
                           " bytes is synchronized before the next MAC but "
                           "exceeds the " +
                           std::to_string(bound) + "-byte memory");
          }
        }
        break;
    }
  }

  for (const LoopFrame& frame : loops) {
    report.add("loop-balance", Severity::kError, frame.index,
               std::string("FOR") + loop_suffix(frame.kind) +
                   " is never closed");
  }

  if (limits.inst_mem_bytes > 0) {
    const std::size_t bytes = n * sizeof(std::uint64_t);
    if (bytes > limits.inst_mem_bytes) {
      report.add("inst-mem-overflow", Severity::kWarning, kWholeProgram,
                 "encoded program (" + std::to_string(bytes) +
                     " bytes) exceeds the " +
                     std::to_string(limits.inst_mem_bytes) +
                     "-byte instruction memory");
    }
  }

  return report;
}

}  // namespace acoustic::isa::analysis

// Static analyzer for assembled ACOUSTIC programs.
//
// The performance results of the reproduction rest on ISA programs being
// well-formed: the cycle-accurate simulator times whatever it is given, so
// a malformed program yields a wrong number, not an error. analyze() walks
// a Program once and checks the structural invariants the distributed
// control model of section III-C relies on, emitting structured
// diagnostics (see diagnostics.hpp) instead of silently mistiming.
//
// Rule set (IDs are stable; severity in parentheses):
//
// Structure
//   loop-balance (error)     END without an open FOR, END whose kind does
//                            not match the innermost open FOR, or a FOR
//                            still open at the end of the program.
//   loop-trip-zero (error)   FOR with a zero trip count (the dispatcher
//                            has no zero-iteration path).
//   loop-trip-range (error)  FOR trip count exceeding the 24-bit field of
//                            the binary encoding.
//   loop-empty (warning)     FOR immediately closed by its END: the loop
//                            dispatches nothing, so it is almost certainly
//                            a codegen slip.
//   operand-range (error)    bytes/cycles operand too large for the 64-bit
//                            instruction word (isa::encode would throw).
//   operand-inexact (warning) operand not exactly representable in the
//                            mantissa/exponent operand format; encoding
//                            would round the transfer size up.
//
// Barriers
//   barr-noop (warning)      BARR with an empty unit mask waits on nothing.
//   barr-unknown-unit (warning) BARR mask bits beyond the defined units.
//
// Dataflow (straight-line order; loop bodies are scanned in program order)
//   mac-uninit (error)       MAC issued before any ACTRNG or before any
//                            WGTRNG: the SNG buffers were never loaded, so
//                            the fabric would stream garbage.
//   actrng-uninit (warning)  ACTRNG before anything wrote the activation
//                            scratchpad (ACTLD or CNTST). Only checked on
//                            DRAM-backed configs — DRAM-less parts have
//                            their scratchpad preloaded externally, and a
//                            single-layer program may legitimately read
//                            state left by a previous program.
//   swap-unsync (error)      ACTRNG after a CNTST with no intervening BARR
//                            whose mask includes the counter unit: the
//                            scratchpad swap is unsynchronized, so the next
//                            layer's SNG loads can race the counter
//                            write-back.
//   cnt-load-clobber (error) CNTLD while the counters hold unsaved MAC
//                            results (a MAC since the last CNTST): the
//                            preload would overwrite live accumulation.
//   cnt-store-empty (warning) CNTST with neither a MAC nor a CNTLD since
//                            the previous CNTST: it drains counters that
//                            hold nothing.
//   wgt-dead-store (warning) WGTLD with no WGTRNG anywhere after it: the
//                            loaded weights are never moved into SNG
//                            buffers, so the transfer is dead.
//
// Machine limits (checked only when MachineLimits provides a bound)
//   dma-no-dram (error)      ACTLD/ACTST/WGTLD on a DRAM-less config (the
//                            ULP part has no external interface).
//   wgt-resident-overflow (error) a WGTLD that the program synchronizes on
//                            before any MAC (resident-intent load) larger
//                            than the weight memory. Streaming loads —
//                            those overlapping MAC work, double-buffered —
//                            are exempt; they never need the full
//                            footprint resident.
//   act-resident-overflow (error) same for ACTLD vs the activation
//                            scratchpad.
//   inst-mem-overflow (warning) encoded program larger than the
//                            instruction memory.
#pragma once

#include "isa/analysis/diagnostics.hpp"
#include "isa/program.hpp"

namespace acoustic::isa::analysis {

/// The architectural bounds the analyzer checks programs against. A zero
/// byte bound disables that check (the ISA itself carries no addresses, so
/// bounds only exist relative to a target configuration).
/// perf::machine_limits() derives one from an ArchConfig.
struct MachineLimits {
  bool has_dram = true;
  std::uint64_t wgt_mem_bytes = 0;   ///< 0 = unchecked
  std::uint64_t act_mem_bytes = 0;   ///< 0 = unchecked
  std::uint64_t inst_mem_bytes = 0;  ///< 0 = unchecked
};

struct AnalyzerOptions {
  MachineLimits limits;
};

/// Runs every rule over @p program. Never throws on malformed programs —
/// malformation is the result, not an exception.
[[nodiscard]] Report analyze(const Program& program,
                             const AnalyzerOptions& options = {});

}  // namespace acoustic::isa::analysis

#include "isa/analysis/diagnostics.hpp"

#include <sstream>

namespace acoustic::isa::analysis {

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kWarning: return "warning";
    case Severity::kError:   return "error";
  }
  return "unknown";
}

std::string Diagnostic::to_string(const Program* program) const {
  std::ostringstream out;
  if (index == kWholeProgram) {
    out << "<program>";
  } else {
    out << '#' << index;
    if (program != nullptr && index < program->size()) {
      out << ' ' << mnemonic((*program)[index].op);
    }
  }
  out << ": " << severity_name(severity) << " [" << rule << "] " << message;
  return out.str();
}

void Report::add(std::string rule, Severity severity, std::size_t index,
                 std::string message) {
  diags_.push_back(
      Diagnostic{std::move(rule), severity, index, std::move(message)});
}

std::size_t Report::error_count() const noexcept {
  std::size_t n = 0;
  for (const Diagnostic& d : diags_) {
    if (d.severity == Severity::kError) {
      ++n;
    }
  }
  return n;
}

std::size_t Report::warning_count() const noexcept {
  return diags_.size() - error_count();
}

bool Report::has_rule(std::string_view rule) const noexcept {
  for (const Diagnostic& d : diags_) {
    if (d.rule == rule) {
      return true;
    }
  }
  return false;
}

std::string Report::to_string(const Program* program) const {
  std::ostringstream out;
  for (const Diagnostic& d : diags_) {
    out << d.to_string(program) << '\n';
  }
  out << error_count() << " error(s), " << warning_count() << " warning(s)\n";
  return out.str();
}

}  // namespace acoustic::isa::analysis

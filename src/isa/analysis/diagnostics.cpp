#include "isa/analysis/diagnostics.hpp"

#include <sstream>

namespace acoustic::isa::analysis {

namespace {

std::string anchor(const Diagnostic& d, const Program* program) {
  std::ostringstream out;
  if (d.index == kWholeProgram) {
    out << "<program>";
  } else {
    out << '#' << d.index;
    if (program != nullptr && d.index < program->size()) {
      out << ' ' << mnemonic((*program)[d.index].op);
    }
  }
  return out.str();
}

}  // namespace

std::string to_string(const Diagnostic& diagnostic, const Program* program) {
  return anchor(diagnostic, program) + ": " +
         severity_name(diagnostic.severity) + " [" + diagnostic.rule + "] " +
         diagnostic.message;
}

std::string Report::to_string(const Program* program) const {
  return core::Report::to_string(
      [program](const Diagnostic& d) { return anchor(d, program); });
}

}  // namespace acoustic::isa::analysis

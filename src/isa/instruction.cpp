#include "isa/instruction.hpp"

#include <stdexcept>

namespace acoustic::isa {

bool Instruction::operator==(const Instruction& other) const {
  return op == other.op && loop == other.loop && count == other.count &&
         bytes == other.bytes && cycles == other.cycles &&
         mask == other.mask;
}

Unit unit_of(Opcode op) noexcept {
  switch (op) {
    case Opcode::kActLd:
    case Opcode::kActSt:
    case Opcode::kWgtLd:
      return Unit::kDma;
    case Opcode::kMac:
      return Unit::kMac;
    case Opcode::kActRng:
      return Unit::kActRng;
    case Opcode::kWgtRng:
    case Opcode::kWgtShift:
      return Unit::kWgtRng;
    case Opcode::kCntLd:
    case Opcode::kCntSt:
      return Unit::kCnt;
    case Opcode::kFor:
    case Opcode::kEnd:
    case Opcode::kBarr:
      return Unit::kDispatch;
  }
  return Unit::kDispatch;
}

std::string mnemonic(Opcode op) {
  switch (op) {
    case Opcode::kActLd:    return "ACTLD";
    case Opcode::kActSt:    return "ACTST";
    case Opcode::kWgtLd:    return "WGTLD";
    case Opcode::kMac:      return "MAC";
    case Opcode::kActRng:   return "ACTRNG";
    case Opcode::kWgtRng:   return "WGTRNG";
    case Opcode::kWgtShift: return "WGTSHIFT";
    case Opcode::kCntLd:    return "CNTLD";
    case Opcode::kCntSt:    return "CNTST";
    case Opcode::kFor:      return "FOR";
    case Opcode::kEnd:      return "END";
    case Opcode::kBarr:     return "BARR";
  }
  throw std::logic_error("mnemonic: bad opcode");
}

std::string unit_name(Unit unit) {
  switch (unit) {
    case Unit::kDma:      return "DMA";
    case Unit::kMac:      return "MAC";
    case Unit::kActRng:   return "ACTRNG";
    case Unit::kWgtRng:   return "WGTRNG";
    case Unit::kCnt:      return "CNT";
    case Unit::kDispatch: return "DISPATCH";
  }
  throw std::logic_error("unit_name: bad unit");
}

char loop_suffix(LoopKind kind) noexcept {
  switch (kind) {
    case LoopKind::kKernel: return 'K';
    case LoopKind::kBatch:  return 'B';
    case LoopKind::kRow:    return 'R';
    case LoopKind::kPool:   return 'P';
  }
  return '?';
}

}  // namespace acoustic::isa

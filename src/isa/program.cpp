#include "isa/program.hpp"

#include <stdexcept>

namespace acoustic::isa {

Instruction& Program::push(Instruction instr) {
  instrs_.push_back(std::move(instr));
  return instrs_.back();
}

namespace {
Instruction make(Opcode op, std::string note) {
  Instruction i;
  i.op = op;
  i.note = std::move(note);
  return i;
}
}  // namespace

Instruction& Program::act_ld(std::uint64_t bytes, std::string note) {
  Instruction i = make(Opcode::kActLd, std::move(note));
  i.bytes = bytes;
  return push(std::move(i));
}

Instruction& Program::act_st(std::uint64_t bytes, std::string note) {
  Instruction i = make(Opcode::kActSt, std::move(note));
  i.bytes = bytes;
  return push(std::move(i));
}

Instruction& Program::wgt_ld(std::uint64_t bytes, std::string note) {
  Instruction i = make(Opcode::kWgtLd, std::move(note));
  i.bytes = bytes;
  return push(std::move(i));
}

Instruction& Program::mac(std::uint64_t cycles, std::string note) {
  Instruction i = make(Opcode::kMac, std::move(note));
  i.cycles = cycles;
  return push(std::move(i));
}

Instruction& Program::act_rng(std::uint64_t bytes, std::string note) {
  Instruction i = make(Opcode::kActRng, std::move(note));
  i.bytes = bytes;
  return push(std::move(i));
}

Instruction& Program::wgt_rng(std::uint64_t bytes, std::string note) {
  Instruction i = make(Opcode::kWgtRng, std::move(note));
  i.bytes = bytes;
  return push(std::move(i));
}

Instruction& Program::wgt_shift(std::uint64_t cycles, std::string note) {
  Instruction i = make(Opcode::kWgtShift, std::move(note));
  i.cycles = cycles;
  return push(std::move(i));
}

Instruction& Program::cnt_ld(std::uint64_t bytes, std::string note) {
  Instruction i = make(Opcode::kCntLd, std::move(note));
  i.bytes = bytes;
  return push(std::move(i));
}

Instruction& Program::cnt_st(std::uint64_t bytes, std::string note) {
  Instruction i = make(Opcode::kCntSt, std::move(note));
  i.bytes = bytes;
  return push(std::move(i));
}

Instruction& Program::loop_begin(LoopKind kind, std::uint32_t count,
                                 std::string note) {
  Instruction i = make(Opcode::kFor, std::move(note));
  i.loop = kind;
  i.count = count;
  return push(std::move(i));
}

Instruction& Program::loop_end(LoopKind kind) {
  Instruction i = make(Opcode::kEnd, {});
  i.loop = kind;
  return push(std::move(i));
}

Instruction& Program::barrier(std::uint8_t mask, std::string note) {
  Instruction i = make(Opcode::kBarr, std::move(note));
  i.mask = mask;
  return push(std::move(i));
}

void Program::validate() const {
  std::vector<LoopKind> stack;
  for (const Instruction& i : instrs_) {
    if (i.op == Opcode::kFor) {
      if (i.count == 0) {
        throw std::invalid_argument("Program: FOR with zero trip count");
      }
      stack.push_back(i.loop);
    } else if (i.op == Opcode::kEnd) {
      if (stack.empty() || stack.back() != i.loop) {
        throw std::invalid_argument("Program: mismatched END");
      }
      stack.pop_back();
    }
  }
  if (!stack.empty()) {
    throw std::invalid_argument("Program: unclosed FOR loop");
  }
}

}  // namespace acoustic::isa

// Text form of ACOUSTIC programs.
//
// One instruction per line:
//   WGTLD bytes=2359296            ; conv2 weights
//   FORK count=16                  ; kernel loop
//   MAC cycles=256                 ; pass
//   ENDK
//   BARR mask=0x06
// FOR/END carry their loop kind as the mnemonic suffix (K/B/R/P), matching
// Table I. '#' or ';' start a comment; blank lines are ignored.
#pragma once

#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace acoustic::isa {

/// Renders @p program as assembly text (parse(format(p)) == p).
[[nodiscard]] std::string format(const Program& program);

/// Parses assembly text. Throws std::invalid_argument with the offending
/// line number on malformed input.
[[nodiscard]] Program parse(std::string_view text);

}  // namespace acoustic::isa

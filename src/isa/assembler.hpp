// Text form of ACOUSTIC programs.
//
// One instruction per line:
//   WGTLD bytes=2359296            ; conv2 weights
//   FORK count=16                  ; kernel loop
//   MAC cycles=256                 ; pass
//   ENDK
//   BARR mask=0x06
// FOR/END carry their loop kind as the mnemonic suffix (K/B/R/P), matching
// Table I. '#' or ';' start a comment; blank lines are ignored.
#pragma once

#include <string>
#include <string_view>

#include "isa/analysis/analyzer.hpp"
#include "isa/program.hpp"

namespace acoustic::isa {

/// Renders @p program as assembly text (parse(format(p)) == p).
[[nodiscard]] std::string format(const Program& program);

/// Parses assembly text. Throws std::invalid_argument with the offending
/// line number on malformed input.
[[nodiscard]] Program parse(std::string_view text);

/// Parse result with the static analyzer's findings attached.
struct ParsedProgram {
  Program program;
  analysis::Report lint;
};

/// Parses assembly text and lints it (warn-level: diagnostics are reported,
/// never thrown — syntactically valid but structurally broken programs
/// still parse). Throws std::invalid_argument only on syntax errors, like
/// parse().
[[nodiscard]] ParsedProgram parse_with_diagnostics(
    std::string_view text, const analysis::AnalyzerOptions& options = {});

}  // namespace acoustic::isa

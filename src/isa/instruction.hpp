// The ACOUSTIC instruction set (paper Table I).
//
// Control is distributed: the Dispatcher reads the program, forwards each
// instruction to the owning control unit's FIFO, maintains loops
// (FORK/FORB/FORR/FORP ... ENDK/ENDB/ENDR/ENDP) and enforces
// synchronization through barriers (BARR with a unit mask). Units run their
// FIFOs independently, which is what lets weight loading for layer i+1
// overlap with the MAC phase of layer i.
#pragma once

#include <cstdint>
#include <string>

namespace acoustic::isa {

/// Control units an instruction can be dispatched to (Table I "Module").
enum class Unit : std::uint8_t {
  kDma,       ///< ACTLD / ACTST / WGTLD
  kMac,       ///< MAC
  kActRng,    ///< ACTRNG
  kWgtRng,    ///< WGTRNG / WGTSHIFT
  kCnt,       ///< CNTLD / CNTST
  kDispatch,  ///< FOR* / END* / BARR
};
inline constexpr int kUnitCount = 6;

enum class Opcode : std::uint8_t {
  kActLd,     ///< load activations DRAM -> activation scratchpad
  kActSt,     ///< store activations scratchpad -> DRAM
  kWgtLd,     ///< load weights DRAM -> weight memory
  kMac,       ///< run the MAC fabric for a compute pass
  kActRng,    ///< load activations into SNG buffers
  kWgtRng,    ///< load weights into SNG buffers
  kWgtShift,  ///< shift weight SNG buffers (padding support)
  kCntLd,     ///< load counter/ReLU units
  kCntSt,     ///< store counter/ReLU results to a scratchpad
  kFor,       ///< open a loop (kernel/batch/row/pooling)
  kEnd,       ///< close the innermost loop of the given kind
  kBarr,      ///< wait until all units in the mask are idle
};

/// Loop kinds of the dispatcher (Table I: K/B/R/P).
enum class LoopKind : std::uint8_t { kKernel, kBatch, kRow, kPool };

/// One ACOUSTIC instruction. Fields are a union-of-purposes kept flat for
/// simplicity; which fields are meaningful depends on the opcode:
///  - memory ops (ACTLD/ACTST/WGTLD, CNTLD/CNTST, ACTRNG/WGTRNG): `bytes`
///  - MAC / WGTSHIFT: `cycles`
///  - FOR: `loop` + `count` (trip count); END: `loop`
///  - BARR: `mask` (bit i = Unit i must be idle)
struct Instruction {
  Opcode op = Opcode::kBarr;
  LoopKind loop = LoopKind::kKernel;
  std::uint32_t count = 0;
  std::uint64_t bytes = 0;
  std::uint64_t cycles = 0;
  std::uint8_t mask = 0;
  std::string note;  ///< trace label (layer/pass), not architectural

  bool operator==(const Instruction& other) const;
};

/// The unit that executes @p op (Table I's Module column).
[[nodiscard]] Unit unit_of(Opcode op) noexcept;

/// Uppercase mnemonic, e.g. "WGTLD".
[[nodiscard]] std::string mnemonic(Opcode op);
[[nodiscard]] std::string unit_name(Unit unit);
[[nodiscard]] char loop_suffix(LoopKind kind) noexcept;

/// Bit for @p unit in a barrier mask.
[[nodiscard]] constexpr std::uint8_t unit_bit(Unit unit) noexcept {
  return static_cast<std::uint8_t>(1u << static_cast<unsigned>(unit));
}

}  // namespace acoustic::isa

#include "isa/encoding.hpp"

#include <stdexcept>

namespace acoustic::isa {

namespace {

constexpr std::uint64_t kOpcodeMask = 0xF;
constexpr unsigned kLoopShift = 4;
constexpr unsigned kMaskShift = 6;
constexpr unsigned kCountShift = 14;
constexpr std::uint64_t kCountMax = (1ull << 24) - 1;
constexpr unsigned kOperandShift = 38;
constexpr std::uint64_t kMantissaMax = (1ull << 24) - 1;

/// Packs an operand as mantissa(24) | exp(2), value = mantissa << (8*exp).
std::uint64_t pack_operand(std::uint64_t value) {
  for (unsigned exp = 0; exp < 4; ++exp) {
    const unsigned shift = 8 * exp;
    if ((value >> shift) <= kMantissaMax && ((value >> shift) << shift) ==
                                                value) {
      return ((value >> shift) << 2) | exp;
    }
  }
  // Round up to the representable grid at the largest exponent.
  const unsigned shift = 24;
  if (value > (kMantissaMax << shift)) {
    throw std::invalid_argument("isa::encode: operand too large");
  }
  const std::uint64_t mantissa = (value + (1ull << shift) - 1) >> shift;
  return (mantissa << 2) | 3;
}

std::uint64_t unpack_operand(std::uint64_t packed) {
  const unsigned exp = static_cast<unsigned>(packed & 0x3);
  return (packed >> 2) << (8 * exp);
}

}  // namespace

std::uint64_t encode(const Instruction& instr) {
  std::uint64_t word = static_cast<std::uint64_t>(instr.op) & kOpcodeMask;
  word |= static_cast<std::uint64_t>(instr.loop) << kLoopShift;
  word |= static_cast<std::uint64_t>(instr.mask) << kMaskShift;
  if (instr.count > kCountMax) {
    throw std::invalid_argument("isa::encode: trip count too large");
  }
  word |= static_cast<std::uint64_t>(instr.count) << kCountShift;
  const std::uint64_t operand =
      (instr.op == Opcode::kMac || instr.op == Opcode::kWgtShift)
          ? instr.cycles
          : instr.bytes;
  word |= pack_operand(operand) << kOperandShift;
  return word;
}

Instruction decode(std::uint64_t word) {
  Instruction instr;
  instr.op = static_cast<Opcode>(word & kOpcodeMask);
  instr.loop = static_cast<LoopKind>((word >> kLoopShift) & 0x3);
  instr.mask = static_cast<std::uint8_t>((word >> kMaskShift) & 0xFF);
  instr.count = static_cast<std::uint32_t>((word >> kCountShift) & kCountMax);
  const std::uint64_t operand = unpack_operand(word >> kOperandShift);
  if (instr.op == Opcode::kMac || instr.op == Opcode::kWgtShift) {
    instr.cycles = operand;
  } else {
    instr.bytes = operand;
  }
  return instr;
}

std::vector<std::uint64_t> encode(const Program& program) {
  std::vector<std::uint64_t> words;
  words.reserve(program.size());
  for (const Instruction& instr : program.instructions()) {
    words.push_back(encode(instr));
  }
  return words;
}

Program decode(std::span<const std::uint64_t> words) {
  Program program;
  for (std::uint64_t word : words) {
    program.push(decode(word));
  }
  return program;
}

std::size_t encoded_size_bytes(const Program& program) {
  return program.size() * sizeof(std::uint64_t);
}

}  // namespace acoustic::isa

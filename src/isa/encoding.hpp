// Binary instruction encoding.
//
// ACOUSTIC stores its program in an on-chip instruction memory (Fig. 2
// "ICode"); this module defines the 64-bit word format the Dispatcher
// would fetch, so instruction-memory footprints are measurable and
// programs can be shipped as binaries.
//
// Word layout (LSB first):
//   [3:0]   opcode
//   [5:4]   loop kind              (FOR/END)
//   [13:6]  barrier mask           (BARR)
//   [37:14] count                  (FOR trip count, 24 bits)
//   [63:38] operand                (bytes or cycles, 26-bit mantissa with
//                                   2-bit shift exponent: value =
//                                   mantissa << (8 * exp), covering byte
//                                   counts into the hundreds of GB)
//
// Notes are not encoded (they are comments, not architecture).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "isa/program.hpp"

namespace acoustic::isa {

/// Encodes one instruction. Throws std::invalid_argument when a field
/// exceeds the format (trip count >= 2^24 or operand not representable).
[[nodiscard]] std::uint64_t encode(const Instruction& instr);

/// Decodes one word (note comes back empty).
[[nodiscard]] Instruction decode(std::uint64_t word);

/// Whole-program encode/decode.
[[nodiscard]] std::vector<std::uint64_t> encode(const Program& program);
[[nodiscard]] Program decode(std::span<const std::uint64_t> words);

/// Instruction-memory footprint of a program in bytes (8 per word).
[[nodiscard]] std::size_t encoded_size_bytes(const Program& program);

}  // namespace acoustic::isa

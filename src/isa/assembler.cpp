#include "isa/assembler.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace acoustic::isa {

namespace {

LoopKind loop_from_suffix(char c, std::size_t line_no) {
  switch (c) {
    case 'K': return LoopKind::kKernel;
    case 'B': return LoopKind::kBatch;
    case 'R': return LoopKind::kRow;
    case 'P': return LoopKind::kPool;
    default:
      throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                  ": unknown loop kind");
  }
}

std::uint64_t parse_value(std::string_view text, std::size_t line_no) {
  std::uint64_t value = 0;
  int base = 10;
  if (text.starts_with("0x") || text.starts_with("0X")) {
    text.remove_prefix(2);
    base = 16;
  }
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, base);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                ": bad numeric value");
  }
  return value;
}

/// Splits "key=value" and applies it to the instruction.
void apply_field(Instruction& instr, std::string_view field,
                 std::size_t line_no) {
  const std::size_t eq = field.find('=');
  if (eq == std::string_view::npos) {
    throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                ": expected key=value, got '" +
                                std::string(field) + "'");
  }
  const std::string_view key = field.substr(0, eq);
  const std::uint64_t value = parse_value(field.substr(eq + 1), line_no);
  if (key == "bytes") {
    instr.bytes = value;
  } else if (key == "cycles") {
    instr.cycles = value;
  } else if (key == "count") {
    instr.count = static_cast<std::uint32_t>(value);
  } else if (key == "mask") {
    instr.mask = static_cast<std::uint8_t>(value);
  } else {
    throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                ": unknown field '" + std::string(key) + "'");
  }
}

}  // namespace

std::string format(const Program& program) {
  std::ostringstream out;
  int depth = 0;
  for (const Instruction& i : program.instructions()) {
    if (i.op == Opcode::kEnd && depth > 0) {
      --depth;
    }
    for (int d = 0; d < depth; ++d) {
      out << "  ";
    }
    switch (i.op) {
      case Opcode::kFor:
        out << "FOR" << loop_suffix(i.loop) << " count=" << i.count;
        ++depth;
        break;
      case Opcode::kEnd:
        out << "END" << loop_suffix(i.loop);
        break;
      case Opcode::kBarr: {
        out << "BARR mask=0x" << std::hex << static_cast<int>(i.mask)
            << std::dec;
        break;
      }
      case Opcode::kMac:
      case Opcode::kWgtShift:
        out << mnemonic(i.op) << " cycles=" << i.cycles;
        break;
      default:
        out << mnemonic(i.op) << " bytes=" << i.bytes;
        break;
    }
    if (!i.note.empty()) {
      out << " ; " << i.note;
    }
    out << '\n';
  }
  return out.str();
}

Program parse(std::string_view text) {
  Program program;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? text.size() - pos : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;

    std::string note;
    const std::size_t comment = line.find_first_of(";#");
    if (comment != std::string_view::npos) {
      std::string_view raw = line.substr(comment + 1);
      while (!raw.empty() && raw.front() == ' ') {
        raw.remove_prefix(1);
      }
      while (!raw.empty() && (raw.back() == ' ' || raw.back() == '\r')) {
        raw.remove_suffix(1);
      }
      note = std::string(raw);
      line = line.substr(0, comment);
    }
    // Tokenize on whitespace.
    std::vector<std::string_view> tokens;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() &&
             (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
        ++i;
      }
      const std::size_t start = i;
      while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
             line[i] != '\r') {
        ++i;
      }
      if (i > start) {
        tokens.push_back(line.substr(start, i - start));
      }
    }
    if (tokens.empty()) {
      continue;
    }
    const std::string_view mn = tokens.front();
    Instruction instr;
    instr.note = std::move(note);
    if (mn.size() == 4 && mn.starts_with("FOR")) {
      instr.op = Opcode::kFor;
      instr.loop = loop_from_suffix(mn[3], line_no);
    } else if (mn.size() == 4 && mn.starts_with("END")) {
      instr.op = Opcode::kEnd;
      instr.loop = loop_from_suffix(mn[3], line_no);
    } else if (mn == "BARR") {
      instr.op = Opcode::kBarr;
    } else if (mn == "ACTLD") {
      instr.op = Opcode::kActLd;
    } else if (mn == "ACTST") {
      instr.op = Opcode::kActSt;
    } else if (mn == "WGTLD") {
      instr.op = Opcode::kWgtLd;
    } else if (mn == "MAC") {
      instr.op = Opcode::kMac;
    } else if (mn == "ACTRNG") {
      instr.op = Opcode::kActRng;
    } else if (mn == "WGTRNG") {
      instr.op = Opcode::kWgtRng;
    } else if (mn == "WGTSHIFT") {
      instr.op = Opcode::kWgtShift;
    } else if (mn == "CNTLD") {
      instr.op = Opcode::kCntLd;
    } else if (mn == "CNTST") {
      instr.op = Opcode::kCntSt;
    } else {
      throw std::invalid_argument("asm line " + std::to_string(line_no) +
                                  ": unknown mnemonic '" + std::string(mn) +
                                  "'");
    }
    for (std::size_t t = 1; t < tokens.size(); ++t) {
      apply_field(instr, tokens[t], line_no);
    }
    program.push(std::move(instr));
  }
  return program;
}

ParsedProgram parse_with_diagnostics(std::string_view text,
                                     const analysis::AnalyzerOptions& options) {
  ParsedProgram result;
  result.program = parse(text);
  result.lint = analysis::analyze(result.program, options);
  return result;
}

}  // namespace acoustic::isa

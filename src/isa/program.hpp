// Program container with structured-loop helpers.
#pragma once

#include <vector>

#include "isa/instruction.hpp"

namespace acoustic::isa {

/// A straight-line ACOUSTIC program (loops are structured FOR/END pairs
/// interpreted by the dispatcher).
class Program {
 public:
  Program() = default;

  /// Appends an instruction.
  Instruction& push(Instruction instr);

  // Convenience builders (return the appended instruction for chaining).
  Instruction& act_ld(std::uint64_t bytes, std::string note = {});
  Instruction& act_st(std::uint64_t bytes, std::string note = {});
  Instruction& wgt_ld(std::uint64_t bytes, std::string note = {});
  Instruction& mac(std::uint64_t cycles, std::string note = {});
  Instruction& act_rng(std::uint64_t bytes, std::string note = {});
  Instruction& wgt_rng(std::uint64_t bytes, std::string note = {});
  Instruction& wgt_shift(std::uint64_t cycles, std::string note = {});
  Instruction& cnt_ld(std::uint64_t bytes, std::string note = {});
  Instruction& cnt_st(std::uint64_t bytes, std::string note = {});
  Instruction& loop_begin(LoopKind kind, std::uint32_t count,
                          std::string note = {});
  Instruction& loop_end(LoopKind kind);
  Instruction& barrier(std::uint8_t mask, std::string note = {});

  [[nodiscard]] const std::vector<Instruction>& instructions() const noexcept {
    return instrs_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return instrs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return instrs_.empty(); }
  [[nodiscard]] const Instruction& operator[](std::size_t i) const noexcept {
    return instrs_[i];
  }

  /// Validates structured-loop nesting (every END matches an open FOR of
  /// the same kind, all loops closed). Throws std::invalid_argument.
  void validate() const;

 private:
  std::vector<Instruction> instrs_;
};

}  // namespace acoustic::isa

#include "baselines/ulp_accelerators.hpp"

namespace acoustic::baselines {

namespace {

// Conv MACs of the LeNet-5 reference point both papers report.
double lenet_conv_macs() {
  return static_cast<double>(nn::lenet5().conv_only().total_macs());
}

/// Scales a published (Fr/s, Fr/J) LeNet-5 point to another conv workload
/// by conv-MAC count (throughput and energy are both per-MAC linear for
/// these fixed-datapath engines).
Performance scale_from_lenet(double lenet_fr_s, double lenet_fr_j,
                             const nn::NetworkDesc& net) {
  const double macs = static_cast<double>(net.conv_macs());
  if (macs <= 0.0) {
    return Performance{0.0, 0.0, false};
  }
  const double ratio = lenet_conv_macs() / macs;
  return Performance{lenet_fr_s * ratio, lenet_fr_j * ratio, true};
}

}  // namespace

UlpSpec mdl_cnn_spec() {
  return UlpSpec{"MDL CNN", "Time", "8b/1b", 0.124, 0.03, 24.0};
}

UlpSpec conv_ram_spec() {
  return UlpSpec{"Conv-RAM", "Analog", "6b/1b", 0.02, 0.016, 364.0};
}

Performance mdl_cnn_run(const nn::NetworkDesc& net) {
  if (net.name.find("LeNet") != std::string::npos) {
    return Performance{1009.0, 33.6e6, true};
  }
  // MDL-CNN reports only LeNet-5; the paper's Table IV shows N/A for the
  // CIFAR-10 CNN. Extrapolation is still offered for what-if analysis but
  // flagged unavailable to match the published table.
  Performance p = scale_from_lenet(1009.0, 33.6e6, net);
  p.available = false;
  return p;
}

Performance conv_ram_run(const nn::NetworkDesc& net) {
  if (net.name.find("LeNet") != std::string::npos) {
    return Performance{15200.0, 40.0e6, true};
  }
  Performance p = scale_from_lenet(15200.0, 40.0e6, net);
  p.available = false;
  return p;
}

}  // namespace acoustic::baselines

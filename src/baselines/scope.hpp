// SCOPE comparison model (Table III baseline).
//
// SCOPE [14] is a DRAM-based in-situ SC accelerator; the ACOUSTIC authors
// "reproduced numbers from [14, 35] and scaled to 28nm" rather than
// simulating it. We do the same: the published 28nm-scaled operating
// points (AlexNet and VGG-16) are stored directly, and other workloads are
// extrapolated from the AlexNet point by MAC count — with the same N/A
// cells the paper shows (SCOPE reports nothing for ResNet-18 or the small
// CIFAR-10 CNN).
#pragma once

#include "baselines/eyeriss.hpp"  // Performance
#include "nn/model_zoo.hpp"

namespace acoustic::baselines {

struct ScopeConfig {
  double area_mm2 = 273.0;
  double clock_mhz = 125.0;
};

[[nodiscard]] ScopeConfig scope_config();

/// Published-point lookup with MAC-scaled fallback for the workloads the
/// paper tabulates; ResNet-18 / CIFAR-10 CNN return available = false.
[[nodiscard]] Performance scope_run(const nn::NetworkDesc& net);

}  // namespace acoustic::baselines

// Table IV baselines: MDL-CNN [32] (all-digital time-domain CNN engine)
// and Conv-RAM [36] (analog in-SRAM convolution engine).
//
// Both are silicon publications; like the ACOUSTIC authors we scale the
// published 28 nm-equivalent operating points. The published point is the
// conv layers of LeNet-5; other conv-only workloads extrapolate by conv
// MAC count. Conv-RAM reports nothing for the CIFAR-10 CNN (N/A cell).
#pragma once

#include <string>

#include "baselines/eyeriss.hpp"  // Performance
#include "nn/model_zoo.hpp"

namespace acoustic::baselines {

struct UlpSpec {
  std::string name;
  std::string domain;      ///< "Analog" / "Time" / "SC"
  std::string precision;   ///< activations/weights
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double clock_mhz = 0.0;
};

[[nodiscard]] UlpSpec mdl_cnn_spec();
[[nodiscard]] UlpSpec conv_ram_spec();

/// Conv-layers-only performance (Table IV). @p net should be the conv_only()
/// projection of a workload.
[[nodiscard]] Performance mdl_cnn_run(const nn::NetworkDesc& net);
[[nodiscard]] Performance conv_ram_run(const nn::NetworkDesc& net);

}  // namespace acoustic::baselines

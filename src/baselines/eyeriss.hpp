// Eyeriss-style fixed-point spatial accelerator model (Table III baseline).
//
// The paper models Eyeriss with the TETRIS simulator [34] at two scales
// (168 and 1024 PEs), 28 nm, 8-bit. This analytical stand-in prices a
// network by MAC throughput (PEs x clock x mapping utilization) and a
// per-MAC system energy (MAC + local/global buffer traffic amortized, the
// quantity TETRIS reports); both constants are calibrated against the
// published Table III rows and then applied uniformly to every workload.
#pragma once

#include <string>

#include "nn/model_zoo.hpp"

namespace acoustic::baselines {

/// Throughput/efficiency of one accelerator on one workload.
struct Performance {
  double frames_per_s = 0.0;
  double frames_per_j = 0.0;
  bool available = true;  ///< false reproduces the paper's "N/A" cells
};

struct EyerissConfig {
  std::string name;
  int pes = 168;
  double clock_mhz = 200.0;
  double area_mm2 = 3.7;
  double power_w = 0.12;
  /// Row-stationary mapping efficiency (fraction of peak MAC throughput);
  /// larger arrays map less efficiently (more fragmentation).
  double utilization = 0.90;
  /// System energy per 8-bit MAC including the memory hierarchy (TETRIS).
  double energy_per_mac_j = 4.5e-12;
};

/// Original Eyeriss, scaled to 28 nm / 8-bit (Table III "Base").
[[nodiscard]] EyerissConfig eyeriss_base();

/// Scaled-up 1024-PE variant (Table III "1k PEs").
[[nodiscard]] EyerissConfig eyeriss_1k();

/// Whole-network throughput and efficiency.
[[nodiscard]] Performance eyeriss_run(const EyerissConfig& cfg,
                                      const nn::NetworkDesc& net);

}  // namespace acoustic::baselines

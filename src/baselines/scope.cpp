#include "baselines/scope.hpp"

namespace acoustic::baselines {

ScopeConfig scope_config() { return ScopeConfig{}; }

Performance scope_run(const nn::NetworkDesc& net) {
  // Published 28 nm-scaled points (paper Table III).
  if (net.name == "AlexNet") {
    return Performance{5771.7, 136.2, true};
  }
  if (net.name == "VGG-16") {
    return Performance{755.9, 9.1, true};
  }
  return Performance{0.0, 0.0, false};
}

}  // namespace acoustic::baselines

#include "baselines/eyeriss.hpp"

namespace acoustic::baselines {

EyerissConfig eyeriss_base() {
  EyerissConfig cfg;
  cfg.name = "Eyeriss Base";
  cfg.pes = 168;
  cfg.clock_mhz = 200.0;
  cfg.area_mm2 = 3.7;
  cfg.power_w = 0.12;
  cfg.utilization = 0.90;
  cfg.energy_per_mac_j = 4.5e-12;
  return cfg;
}

EyerissConfig eyeriss_1k() {
  EyerissConfig cfg;
  cfg.name = "Eyeriss 1k PEs";
  cfg.pes = 1024;
  cfg.clock_mhz = 200.0;
  cfg.area_mm2 = 15.2;
  cfg.power_w = 0.45;
  // Larger array: more mapping fragmentation (calibrated on Table III).
  cfg.utilization = 0.73;
  cfg.energy_per_mac_j = 3.6e-12;
  return cfg;
}

Performance eyeriss_run(const EyerissConfig& cfg,
                        const nn::NetworkDesc& net) {
  Performance perf;
  const double macs = static_cast<double>(net.total_macs());
  if (macs <= 0.0) {
    perf.available = false;
    return perf;
  }
  const double mac_rate =
      static_cast<double>(cfg.pes) * cfg.clock_mhz * 1e6 * cfg.utilization;
  perf.frames_per_s = mac_rate / macs;
  perf.frames_per_j = 1.0 / (macs * cfg.energy_per_mac_j);
  return perf;
}

}  // namespace acoustic::baselines

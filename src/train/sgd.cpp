#include "train/sgd.hpp"

#include <algorithm>
#include <stdexcept>

namespace acoustic::train {

void Sgd::step(std::vector<nn::ParamView>& params) {
  if (velocity_.empty()) {
    velocity_.resize(params.size());
    for (std::size_t p = 0; p < params.size(); ++p) {
      velocity_[p].assign(params[p].values.size(), 0.0f);
    }
  }
  if (velocity_.size() != params.size()) {
    throw std::invalid_argument("Sgd::step: parameter list changed size");
  }
  for (std::size_t p = 0; p < params.size(); ++p) {
    auto values = params[p].values;
    auto grads = params[p].gradients;
    auto& vel = velocity_[p];
    for (std::size_t i = 0; i < values.size(); ++i) {
      vel[i] = config_.momentum * vel[i] - config_.learning_rate * grads[i];
      values[i] += vel[i];
      if (config_.weight_clip > 0.0f) {
        values[i] =
            std::clamp(values[i], -config_.weight_clip, config_.weight_clip);
      }
    }
  }
}

}  // namespace acoustic::train

#include "train/loss.hpp"

#include <algorithm>
#include <cmath>

namespace acoustic::train {

nn::Tensor softmax(const nn::Tensor& logits) {
  nn::Tensor out(logits.shape());
  float max_logit = logits[0];
  for (std::size_t i = 1; i < logits.size(); ++i) {
    max_logit = std::max(max_logit, logits[i]);
  }
  float denom = 0.0f;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - max_logit);
    denom += out[i];
  }
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] /= denom;
  }
  return out;
}

LossResult softmax_cross_entropy(const nn::Tensor& logits, int label) {
  LossResult result;
  result.grad = softmax(logits);
  const float p =
      std::max(result.grad[static_cast<std::size_t>(label)], 1e-12f);
  result.loss = -std::log(p);
  result.grad[static_cast<std::size_t>(label)] -= 1.0f;
  return result;
}

}  // namespace acoustic::train

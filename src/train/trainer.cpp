#include "train/trainer.hpp"

#include <cstdio>
#include <numeric>

#include "nn/quantize.hpp"
#include "sc/rng.hpp"
#include "train/loss.hpp"

namespace acoustic::train {

TrainStats fit(nn::Network& net, const Dataset& data,
               const TrainConfig& config) {
  TrainStats stats;
  Sgd sgd(SgdConfig{config.learning_rate, config.momentum,
                    config.weight_clip});
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  sc::XorShift32 rng(config.shuffle_seed);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with the deterministic session RNG.
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = rng.next() % i;
      std::swap(order[i - 1], order[j]);
    }
    double loss_sum = 0.0;
    std::size_t correct = 0;
    int in_batch = 0;
    net.zero_gradients();
    for (std::size_t idx : order) {
      const Sample& sample = data.samples[idx];
      const nn::Tensor logits = net.forward(sample.image);
      if (static_cast<int>(logits.argmax()) == sample.label) {
        ++correct;
      }
      const LossResult loss = softmax_cross_entropy(logits, sample.label);
      loss_sum += loss.loss;
      (void)net.backward(loss.grad);
      if (++in_batch == config.batch_size) {
        auto params = net.parameters();
        sgd.step(params);
        net.zero_gradients();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      auto params = net.parameters();
      sgd.step(params);
      net.zero_gradients();
    }
    stats.epoch_loss.push_back(
        static_cast<float>(loss_sum / static_cast<double>(data.size())));
    stats.epoch_accuracy.push_back(static_cast<float>(correct) /
                                   static_cast<float>(data.size()));
    sgd.set_learning_rate(sgd.config().learning_rate * config.lr_decay);
    if (config.verbose) {
      std::printf("epoch %2d  loss %.4f  acc %.2f%%\n", epoch + 1,
                  stats.epoch_loss.back(),
                  100.0f * stats.epoch_accuracy.back());
    }
  }
  return stats;
}

float evaluate(nn::Network& net, const Dataset& data) {
  if (data.size() == 0) {
    return 0.0f;
  }
  std::size_t correct = 0;
  for (const Sample& sample : data.samples) {
    const nn::Tensor logits = net.forward(sample.image);
    if (static_cast<int>(logits.argmax()) == sample.label) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

float evaluate_quantized(nn::Network& net, const Dataset& data, int bits) {
  if (data.size() == 0) {
    return 0.0f;
  }
  // Snapshot and quantize all weights.
  auto params = net.parameters();
  std::vector<std::vector<float>> saved;
  saved.reserve(params.size());
  for (nn::ParamView& p : params) {
    saved.emplace_back(p.values.begin(), p.values.end());
    (void)nn::fake_quantize(p.values, bits);
  }
  std::size_t correct = 0;
  for (const Sample& sample : data.samples) {
    const nn::Tensor logits = net.forward_with_hook(
        sample.image, [bits](nn::Tensor& t, std::size_t) {
          (void)nn::fake_quantize(t.data(), bits);
        });
    if (static_cast<int>(logits.argmax()) == sample.label) {
      ++correct;
    }
  }
  // Restore float weights.
  for (std::size_t p = 0; p < params.size(); ++p) {
    std::copy(saved[p].begin(), saved[p].end(), params[p].values.begin());
  }
  return static_cast<float>(correct) / static_cast<float>(data.size());
}

}  // namespace acoustic::train

// SGD optimizer with momentum and weight clipping.
//
// SC representations carry magnitudes <= 1, so weights are clipped to
// [-1, 1] after every step (ACOUSTIC trains networks whose weights are
// directly encodable as split-unipolar streams).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace acoustic::train {

struct SgdConfig {
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_clip = 1.0f;  ///< absolute clip bound; 0 disables clipping
};

class Sgd {
 public:
  explicit Sgd(SgdConfig config) : config_(config) {}

  /// One update step over @p params (velocity buffers are keyed by position,
  /// so pass the same parameter list every step).
  void step(std::vector<nn::ParamView>& params);

  [[nodiscard]] const SgdConfig& config() const noexcept { return config_; }
  void set_learning_rate(float lr) noexcept { config_.learning_rate = lr; }

 private:
  SgdConfig config_;
  std::vector<std::vector<float>> velocity_;
};

}  // namespace acoustic::train

// Stream-based (hardware-in-the-loop) training.
//
// The paper's section II-D speedup claim is measured against "stochastic
// stream-based CNN training": running the forward pass through the actual
// bit-level simulator so the loss sees every stochastic artifact
// (quantization, stream noise, OR saturation, skipping pooling). That is
// the gold standard for accuracy at short streams and brutally slow —
// which is exactly why Eq. (1) exists.
//
// This module implements it as straight-through-estimator fine-tuning:
//   forward:  logits = ScNetwork(net).forward(x)      (bit-exact)
//   backward: gradients through the float kOrApprox path, evaluated at the
//             same input (the STE surrogate for the non-differentiable
//             bitstream computation)
// Weights update between samples; the executor reads them live.
#pragma once

#include "sim/sc_config.hpp"
#include "train/trainer.hpp"

namespace acoustic::train {

/// Fine-tunes @p net with bit-level stochastic forward passes under
/// @p sc_cfg. The network's weighted layers should be in kOrApprox mode
/// (the backward surrogate). Orders of magnitude slower per epoch than
/// fit(); use few epochs on a pre-trained model.
TrainStats fit_stream_aware(nn::Network& net, const Dataset& data,
                            const TrainConfig& config,
                            const sim::ScConfig& sc_cfg);

}  // namespace acoustic::train

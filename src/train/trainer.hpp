// Training loop and evaluation helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/network.hpp"
#include "train/dataset.hpp"
#include "train/sgd.hpp"

namespace acoustic::train {

struct TrainConfig {
  int epochs = 10;
  int batch_size = 8;             ///< gradients accumulate over a batch
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  float weight_clip = 1.0f;
  float lr_decay = 1.0f;          ///< multiplied into lr after each epoch
  std::uint32_t shuffle_seed = 1;
  bool verbose = false;
};

struct TrainStats {
  std::vector<float> epoch_loss;      ///< mean per-sample loss per epoch
  std::vector<float> epoch_accuracy;  ///< training accuracy per epoch
};

/// Trains @p net on @p data with softmax cross-entropy.
TrainStats fit(nn::Network& net, const Dataset& data,
               const TrainConfig& config);

/// Top-1 accuracy of @p net on @p data.
[[nodiscard]] float evaluate(nn::Network& net, const Dataset& data);

/// Top-1 accuracy with @p bits-bit fixed-point weights and activations:
/// weights are snapped to the signed grid for the duration of the call
/// (then restored) and every layer output is snapped to the same grid —
/// the Table II "8-bit Fixed Pt" baseline.
[[nodiscard]] float evaluate_quantized(nn::Network& net, const Dataset& data,
                                       int bits);

}  // namespace acoustic::train

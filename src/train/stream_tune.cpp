#include "train/stream_tune.hpp"

#include <cstdio>
#include <numeric>

#include "sc/rng.hpp"
#include "sim/sc_network.hpp"
#include "train/loss.hpp"

namespace acoustic::train {

TrainStats fit_stream_aware(nn::Network& net, const Dataset& data,
                            const TrainConfig& config,
                            const sim::ScConfig& sc_cfg) {
  TrainStats stats;
  Sgd sgd(SgdConfig{config.learning_rate, config.momentum,
                    config.weight_clip});
  sim::ScNetwork executor(net, sc_cfg);

  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  sc::XorShift32 rng(config.shuffle_seed);

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t i = order.size(); i > 1; --i) {
      const std::size_t j = rng.next() % i;
      std::swap(order[i - 1], order[j]);
    }
    double loss_sum = 0.0;
    std::size_t correct = 0;
    int in_batch = 0;
    net.zero_gradients();
    for (std::size_t idx : order) {
      const Sample& sample = data.samples[idx];
      // Bit-exact forward: this is what the hardware would produce.
      const nn::Tensor sc_logits = executor.forward(sample.image);
      if (static_cast<int>(sc_logits.argmax()) == sample.label) {
        ++correct;
      }
      const LossResult loss = softmax_cross_entropy(sc_logits, sample.label);
      loss_sum += loss.loss;
      // Straight-through: populate the float path's caches, then push the
      // stochastic-forward loss gradient through them.
      (void)net.forward(sample.image);
      (void)net.backward(loss.grad);
      if (++in_batch == config.batch_size) {
        auto params = net.parameters();
        sgd.step(params);
        net.zero_gradients();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {
      auto params = net.parameters();
      sgd.step(params);
      net.zero_gradients();
    }
    stats.epoch_loss.push_back(
        static_cast<float>(loss_sum / static_cast<double>(data.size())));
    stats.epoch_accuracy.push_back(static_cast<float>(correct) /
                                   static_cast<float>(data.size()));
    sgd.set_learning_rate(sgd.config().learning_rate * config.lr_decay);
    if (config.verbose) {
      std::printf("stream-tune epoch %2d  loss %.4f  acc %.2f%%\n",
                  epoch + 1, stats.epoch_loss.back(),
                  100.0f * stats.epoch_accuracy.back());
    }
  }
  return stats;
}

}  // namespace acoustic::train

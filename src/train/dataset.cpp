#include "train/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "sc/rng.hpp"

namespace acoustic::train {

namespace {

// Seven-segment encoding per digit; segments are indexed
//   0: top, 1: top-right, 2: bottom-right, 3: bottom,
//   4: bottom-left, 5: top-left, 6: middle.
constexpr std::uint8_t kSegments[10] = {
    0b0111111,  // 0
    0b0000110,  // 1
    0b1011011,  // 2
    0b1001111,  // 3
    0b1100110,  // 4
    0b1101101,  // 5
    0b1111101,  // 6
    0b0000111,  // 7
    0b1111111,  // 8
    0b1101111,  // 9
};

/// Draws an axis-aligned thick line segment onto the canvas.
void draw_segment(nn::Tensor& img, int y0, int x0, int y1, int x1,
                  int thickness, float intensity) {
  const auto shape = img.shape();
  for (int y = std::min(y0, y1); y <= std::max(y0, y1); ++y) {
    for (int x = std::min(x0, x1); x <= std::max(x0, x1); ++x) {
      for (int ty = 0; ty < thickness; ++ty) {
        for (int tx = 0; tx < thickness; ++tx) {
          const int yy = y + ty;
          const int xx = x + tx;
          if (yy >= 0 && yy < shape.h && xx >= 0 && xx < shape.w) {
            img.at(yy, xx, 0) = std::min(1.0f, img.at(yy, xx, 0) + intensity);
          }
        }
      }
    }
  }
}

void add_noise(nn::Tensor& img, sc::XorShift32& rng, float amplitude) {
  for (std::size_t i = 0; i < img.size(); ++i) {
    const float noise =
        (static_cast<float>(rng.next_double()) - 0.5f) * 2.0f * amplitude;
    img[i] = std::clamp(img[i] + noise, 0.0f, 1.0f);
  }
}

}  // namespace

Dataset make_synth_digits(std::size_t count, std::uint32_t seed, int side) {
  sc::XorShift32 rng(seed);
  Dataset ds;
  ds.samples.reserve(count);
  for (std::size_t n = 0; n < count; ++n) {
    const int label = static_cast<int>(rng.next() % 10);
    nn::Tensor img(nn::Shape{side, side, 1});

    // Glyph geometry: a 2x1 aspect seven-segment frame placed with jitter.
    const int glyph_h = side - 6;
    const int glyph_w = glyph_h / 2 + 2;
    const int oy = 2 + static_cast<int>(rng.next() % 3);
    const int ox = 2 + static_cast<int>(rng.next() % std::max(1, side - glyph_w - 3));
    const int thickness = 1 + static_cast<int>(rng.next() % 2);
    const float intensity =
        0.6f + 0.4f * static_cast<float>(rng.next_double());
    const int mid = oy + glyph_h / 2;
    const int bot = oy + glyph_h;
    const int right = ox + glyph_w;

    const std::uint8_t segs = kSegments[label];
    if (segs & (1u << 0)) draw_segment(img, oy, ox, oy, right, thickness, intensity);
    if (segs & (1u << 1)) draw_segment(img, oy, right, mid, right, thickness, intensity);
    if (segs & (1u << 2)) draw_segment(img, mid, right, bot, right, thickness, intensity);
    if (segs & (1u << 3)) draw_segment(img, bot, ox, bot, right, thickness, intensity);
    if (segs & (1u << 4)) draw_segment(img, mid, ox, bot, ox, thickness, intensity);
    if (segs & (1u << 5)) draw_segment(img, oy, ox, mid, ox, thickness, intensity);
    if (segs & (1u << 6)) draw_segment(img, mid, ox, mid, right, thickness, intensity);

    add_noise(img, rng, 0.08f);
    ds.samples.push_back(Sample{std::move(img), label});
  }
  return ds;
}

Dataset make_synth_objects(std::size_t count, std::uint32_t seed, int side) {
  sc::XorShift32 rng(seed);
  Dataset ds;
  ds.samples.reserve(count);
  // Classes: 5 shapes x 2 color families.
  for (std::size_t n = 0; n < count; ++n) {
    const int label = static_cast<int>(rng.next() % 10);
    const int shape_kind = label % 5;    // disc, ring, bar, checker, cross
    const int color_kind = label / 5;    // warm (R-dominant) / cool (B-dominant)
    nn::Tensor img(nn::Shape{side, side, 3});

    const float cy =
        side * (0.35f + 0.3f * static_cast<float>(rng.next_double()));
    const float cx =
        side * (0.35f + 0.3f * static_cast<float>(rng.next_double()));
    const float radius =
        side * (0.2f + 0.15f * static_cast<float>(rng.next_double()));
    const float base = 0.55f + 0.35f * static_cast<float>(rng.next_double());
    const float primary = color_kind == 0 ? base : base * 0.25f;
    const float secondary = color_kind == 0 ? base * 0.25f : base;

    for (int y = 0; y < side; ++y) {
      for (int x = 0; x < side; ++x) {
        const float dy = static_cast<float>(y) - cy;
        const float dx = static_cast<float>(x) - cx;
        const float d = std::sqrt(dy * dy + dx * dx);
        bool on = false;
        switch (shape_kind) {
          case 0:  // disc
            on = d < radius;
            break;
          case 1:  // ring
            on = d < radius && d > radius * 0.55f;
            break;
          case 2:  // bar
            on = std::fabs(dy) < radius * 0.35f;
            break;
          case 3:  // checker
            on = (((y / 3) + (x / 3)) % 2) == 0 && d < radius * 1.6f;
            break;
          case 4:  // cross
            on = std::fabs(dy) < radius * 0.3f || std::fabs(dx) < radius * 0.3f;
            break;
          default:
            break;
        }
        if (on) {
          img.at(y, x, 0) = primary;
          img.at(y, x, 1) = base * 0.4f;
          img.at(y, x, 2) = secondary;
        }
      }
    }
    add_noise(img, rng, 0.1f);
    ds.samples.push_back(Sample{std::move(img), label});
  }
  return ds;
}

}  // namespace acoustic::train

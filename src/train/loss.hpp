// Softmax cross-entropy loss.
#pragma once

#include "nn/tensor.hpp"

namespace acoustic::train {

/// Loss value and gradient with respect to the logits.
struct LossResult {
  float loss = 0.0f;
  nn::Tensor grad;  ///< dLoss/dLogits, same shape as the logits
};

/// Numerically stable softmax cross-entropy against an integer class label.
[[nodiscard]] LossResult softmax_cross_entropy(const nn::Tensor& logits,
                                               int label);

/// Softmax probabilities of a logit vector (stable).
[[nodiscard]] nn::Tensor softmax(const nn::Tensor& logits);

}  // namespace acoustic::train

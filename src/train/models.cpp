#include "train/models.hpp"

#include "nn/activation.hpp"
#include "nn/pool.hpp"
#include "nn/residual.hpp"

namespace acoustic::train {

nn::Network build_lenet_small(nn::AccumMode mode, int side,
                              std::uint32_t seed) {
  nn::Network net;
  auto& c1 = net.add<nn::Conv2D>(nn::ConvSpec{
      .in_channels = 1, .out_channels = 6, .kernel = 5, .stride = 1,
      .padding = 2, .bias = false, .mode = mode});
  net.add<nn::AvgPool2D>(2);
  net.add<nn::ReLU>();
  auto& c2 = net.add<nn::Conv2D>(nn::ConvSpec{
      .in_channels = 6, .out_channels = 16, .kernel = 5, .stride = 1,
      .padding = 0, .bias = false, .mode = mode});
  net.add<nn::AvgPool2D>(2);
  net.add<nn::ReLU>();
  const int feat = side / 2;                  // after pool1
  const int conv2_out = feat - 4;             // 5x5, no padding
  const int flat = (conv2_out / 2) * (conv2_out / 2) * 16;
  auto& d1 = net.add<nn::Dense>(nn::DenseSpec{
      .in_features = flat, .out_features = 48, .bias = false, .mode = mode});
  net.add<nn::ReLU>();
  auto& d2 = net.add<nn::Dense>(nn::DenseSpec{
      .in_features = 48, .out_features = 10, .bias = false, .mode = mode});
  c1.initialize(seed);
  c2.initialize(seed + 1);
  d1.initialize(seed + 2);
  d2.initialize(seed + 3);
  return net;
}

namespace {

nn::Network build_cifar_body(nn::AccumMode mode, int side, std::uint32_t seed,
                             bool max_pool) {
  nn::Network net;
  auto& c1 = net.add<nn::Conv2D>(nn::ConvSpec{
      .in_channels = 3, .out_channels = 8, .kernel = 5, .stride = 1,
      .padding = 2, .bias = false, .mode = mode});
  // Hardware order: pooling happens in the counters, ReLU after
  // conversion; max pooling (FSM-based) would sit after ReLU instead.
  if (max_pool) {
    net.add<nn::ReLU>();
    net.add<nn::MaxPool2D>(2);
  } else {
    net.add<nn::AvgPool2D>(2);
    net.add<nn::ReLU>();
  }
  auto& c2 = net.add<nn::Conv2D>(nn::ConvSpec{
      .in_channels = 8, .out_channels = 16, .kernel = 5, .stride = 1,
      .padding = 2, .bias = false, .mode = mode});
  // Hardware order: pooling happens in the counters, ReLU after
  // conversion; max pooling (FSM-based) would sit after ReLU instead.
  if (max_pool) {
    net.add<nn::ReLU>();
    net.add<nn::MaxPool2D>(2);
  } else {
    net.add<nn::AvgPool2D>(2);
    net.add<nn::ReLU>();
  }
  const int feat = side / 4;
  auto& d1 = net.add<nn::Dense>(nn::DenseSpec{
      .in_features = feat * feat * 16, .out_features = 10,
      .bias = false, .mode = mode});
  c1.initialize(seed);
  c2.initialize(seed + 1);
  d1.initialize(seed + 2);
  return net;
}

}  // namespace

nn::Network build_cifar_small(nn::AccumMode mode, int side,
                              std::uint32_t seed) {
  return build_cifar_body(mode, side, seed, /*max_pool=*/false);
}

nn::Network build_cifar_small_maxpool(nn::AccumMode mode, int side,
                                      std::uint32_t seed) {
  return build_cifar_body(mode, side, seed, /*max_pool=*/true);
}

nn::Network build_resnet_tiny(nn::AccumMode mode, int side,
                              std::uint32_t seed) {
  nn::Network net;
  auto& stem = net.add<nn::Conv2D>(nn::ConvSpec{
      .in_channels = 3, .out_channels = 8, .kernel = 3, .stride = 1,
      .padding = 1, .bias = false, .mode = mode});
  net.add<nn::AvgPool2D>(2);
  net.add<nn::ReLU>();

  auto state = std::make_shared<nn::SkipState>();
  net.add<nn::SkipSave>(state);
  auto& b1 = net.add<nn::Conv2D>(nn::ConvSpec{
      .in_channels = 8, .out_channels = 8, .kernel = 3, .stride = 1,
      .padding = 1, .bias = false, .mode = mode});
  net.add<nn::ReLU>();
  auto& b2 = net.add<nn::Conv2D>(nn::ConvSpec{
      .in_channels = 8, .out_channels = 8, .kernel = 3, .stride = 1,
      .padding = 1, .bias = false, .mode = mode});
  net.add<nn::SkipAdd>(state);
  net.add<nn::ReLU>();

  const int feat = side / 2;
  auto& head = net.add<nn::Dense>(nn::DenseSpec{
      .in_features = feat * feat * 8, .out_features = 10, .bias = false,
      .mode = mode});
  stem.initialize(seed);
  b1.initialize(seed + 1);
  b2.initialize(seed + 2);
  head.initialize(seed + 3);
  return net;
}

void set_network_mode(nn::Network& net, nn::AccumMode mode) {
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    if (auto* conv = dynamic_cast<nn::Conv2D*>(&net.layer(i))) {
      conv->set_mode(mode);
    } else if (auto* dense = dynamic_cast<nn::Dense*>(&net.layer(i))) {
      dense->set_mode(mode);
    }
  }
}

}  // namespace acoustic::train

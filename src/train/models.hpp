// Trainable small-network builders for the accuracy experiments.
//
// These are scaled-down analogues of the paper's Table II networks sized
// for the synthetic datasets (DESIGN.md section 3): every layer type the
// accelerator supports is exercised (conv with padding, average pooling,
// ReLU, fully-connected). All weighted layers share one AccumMode so a
// model can be trained with kOrApprox (the paper's training enhancement)
// and evaluated in any mode.
#pragma once

#include <cstdint>

#include "nn/conv.hpp"
#include "nn/dense.hpp"
#include "nn/network.hpp"

namespace acoustic::train {

/// LeNet-style net for SynthDigits (side x side x 1, 10 classes):
/// conv5x5(1->6,pad2) relu pool2 conv5x5(6->16) relu pool2 dense relu
/// dense(->10).
[[nodiscard]] nn::Network build_lenet_small(nn::AccumMode mode, int side = 16,
                                            std::uint32_t seed = 7);

/// CIFAR-style net for SynthObjects (side x side x 3, 10 classes):
/// conv5x5(3->8,pad2) relu pool2 conv5x5(8->16,pad2) relu pool2
/// dense(->10).
[[nodiscard]] nn::Network build_cifar_small(nn::AccumMode mode, int side = 16,
                                            std::uint32_t seed = 11);

/// Variant of build_cifar_small with max pooling instead of average pooling
/// (for the "<0.3% accuracy difference" observation of section II-C).
[[nodiscard]] nn::Network build_cifar_small_maxpool(nn::AccumMode mode,
                                                    int side = 16,
                                                    std::uint32_t seed = 11);

/// Tiny residual net for SynthObjects (side x side x 3, 10 classes):
/// conv3x3(3->8,pad1) pool2 relu, one basic block
/// {skip-save conv3x3(8->8,pad1) relu conv3x3(8->8,pad1) skip-add relu},
/// dense(->10). Exercises the skip-connection (counter-preload) path.
[[nodiscard]] nn::Network build_resnet_tiny(nn::AccumMode mode,
                                            int side = 16,
                                            std::uint32_t seed = 77);

/// Sets the accumulation mode of every weighted layer in @p net.
void set_network_mode(nn::Network& net, nn::AccumMode mode);

}  // namespace acoustic::train

// Synthetic image-classification datasets.
//
// The paper evaluates accuracy on MNIST, SVHN and CIFAR-10, which are not
// available offline; per the substitution rule (DESIGN.md section 3) we
// generate procedural datasets with the same tensor shapes and 10-class
// structure. Table II's signal — how the SC accuracy approaches the 8-bit
// fixed-point accuracy as stream length grows — depends on the arithmetic,
// not on which images are classified, so any non-trivial 10-way task
// exercises the same code paths.
//
//  * SynthDigits: seven-segment-style digit glyphs with random position,
//    thickness, intensity and pixel noise on an HxWx1 canvas (MNIST stand-in).
//  * SynthObjects: 10 classes of colored geometric textures (shape x color
//    family) with noise on an HxWx3 canvas (CIFAR-10 / SVHN stand-in).
//
// All pixels are in [0, 1] — the accelerator's unipolar activation domain.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace acoustic::train {

/// One labelled image.
struct Sample {
  nn::Tensor image;
  int label = 0;
};

/// A labelled dataset (10 classes, balanced in expectation).
struct Dataset {
  std::vector<Sample> samples;

  [[nodiscard]] std::size_t size() const noexcept { return samples.size(); }
};

/// Generates @p count seven-segment digit images of @p side x @p side x 1.
[[nodiscard]] Dataset make_synth_digits(std::size_t count, std::uint32_t seed,
                                        int side = 16);

/// Generates @p count colored-texture images of @p side x @p side x 3.
[[nodiscard]] Dataset make_synth_objects(std::size_t count,
                                         std::uint32_t seed, int side = 16);

}  // namespace acoustic::train

// Single-image forward-latency benchmark for the bit-level SC executor:
// scalar reference path vs the planned (packed stream plan) fast path,
// serial and with intra-image row parallelism.
//
// Before timing anything the harness verifies that every planned variant
// produces BYTE-identical output to the scalar oracle — a perf number for
// a path that changed the bits would be meaningless — and exits 1 on any
// mismatch.
//
// Usage:
//   bench_sc_forward [--iters N] [--stream N] [--threads N] [--json PATH]
//                    [--check BASELINE [--tolerance F]]
// --json writes the measured variants to PATH (see BENCH_sc_forward.json
// for the committed baseline). --check compares the current run against a
// previously written baseline and prints a GitHub Actions `::warning` for
// every variant whose images/s dropped more than --tolerance (default
// 0.2 = 20%) below it. Regressions warn, they never fail the run: CI
// machines are noisy and a hard gate on throughput would flake.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "sc/kernels/kernels.hpp"
#include "sc/rng.hpp"
#include "sim/sc_network.hpp"
#include "train/models.hpp"

using namespace acoustic;

namespace {

struct VariantResult {
  std::string name;
  unsigned threads = 1;
  double mean_us = 0.0;
  double min_us = 0.0;
  double images_per_s = 0.0;
};

nn::Tensor random_unit(nn::Shape shape, std::uint32_t seed) {
  nn::Tensor t(shape);
  sc::XorShift32 rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.next_double());
  }
  return t;
}

bool bytes_equal(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.shape() != b.shape()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float af = a[i];
    const float bf = b[i];
    std::uint32_t aw = 0;
    std::uint32_t bw = 0;
    std::memcpy(&aw, &af, sizeof(aw));
    std::memcpy(&bw, &bf, sizeof(bw));
    if (aw != bw) {
      return false;
    }
  }
  return true;
}

VariantResult measure(const std::string& name, nn::Network& net,
                      const sim::ScConfig& cfg, const nn::Tensor& input,
                      int iters) {
  sim::ScNetwork exec(net, cfg);
  // Steady-state latency through the production entry point (the batch
  // evaluator calls forward_into with a reused output tensor). Warmup:
  // the first forwards build the weight plans and size the scratch arena;
  // the timed iterations are allocation-free.
  nn::Tensor out;
  exec.forward_into(input, out);
  exec.forward_into(input, out);

  std::vector<double> times_us;
  times_us.reserve(static_cast<std::size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    exec.forward_into(input, out);
    const auto t1 = std::chrono::steady_clock::now();
    // Keep the output alive so the call cannot be elided.
    if (out.size() == 0) {
      std::abort();
    }
    times_us.push_back(
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }

  VariantResult r;
  r.name = name;
  r.threads = cfg.intra_threads;
  double sum = 0.0;
  r.min_us = times_us.front();
  for (const double t : times_us) {
    sum += t;
    r.min_us = std::min(r.min_us, t);
  }
  r.mean_us = sum / static_cast<double>(times_us.size());
  r.images_per_s = 1e6 / r.mean_us;
  return r;
}

/// Pulls `"images_per_s": <number>` for the variant named @p name out of a
/// baseline previously written by --json. Returns a negative value when
/// the variant is absent (nothing to compare against).
double baseline_images_per_s(const std::string& baseline,
                             const std::string& name) {
  const std::string key = "\"name\": \"" + name + "\"";
  const std::size_t at = baseline.find(key);
  if (at == std::string::npos) {
    return -1.0;
  }
  const std::string field = "\"images_per_s\": ";
  const std::size_t value = baseline.find(field, at);
  if (value == std::string::npos) {
    return -1.0;
  }
  return std::strtod(baseline.c_str() + value + field.size(), nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 20;
  std::size_t stream = 128;
  unsigned threads = 4;
  std::string json_path;
  std::string check_path;
  double tolerance = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stream") == 0 && i + 1 < argc) {
      stream = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_sc_forward [--iters N] [--stream N] "
                   "[--threads N] [--json PATH] [--check BASELINE "
                   "[--tolerance F]]\n");
      return 2;
    }
  }
  if (iters < 1) {
    iters = 1;
  }

  std::printf("=== SC forward latency: LeNet-small, stream %zu, simd %s "
              "===\n\n",
              stream,
              sc::kernels::level_name(sc::kernels::active_level()));

  nn::Network net = train::build_lenet_small(nn::AccumMode::kOrApprox, 16);
  const nn::Tensor input = random_unit(nn::Shape{16, 16, 1}, 2024);

  sim::ScConfig base;
  base.stream_length = stream;

  sim::ScConfig scalar_cfg = base;
  scalar_cfg.exec = sim::ExecMode::kScalar;
  sim::ScConfig planned_cfg = base;
  planned_cfg.exec = sim::ExecMode::kPlanned;
  planned_cfg.intra_threads = 1;
  sim::ScConfig threaded_cfg = planned_cfg;
  threaded_cfg.intra_threads = threads;
  // Auto mode: the work-threshold gate decides per layer. On LeNet-small
  // every layer sits below the threshold, so this must track the serial
  // planned variant — the recorded regression was auto-parallelism forking
  // on layers too small to amortize the join.
  sim::ScConfig auto_cfg = planned_cfg;
  auto_cfg.intra_threads = 0;

  // Bit-exactness gate: the fast path must be a pure refactoring.
  {
    sim::ScNetwork scalar_exec(net, scalar_cfg);
    const nn::Tensor want = scalar_exec.forward(input);
    for (const sim::ScConfig* cfg : {&planned_cfg, &threaded_cfg, &auto_cfg}) {
      sim::ScNetwork planned_exec(net, *cfg);
      const nn::Tensor got = planned_exec.forward(input);
      if (!bytes_equal(got, want)) {
        std::fprintf(stderr,
                     "FAIL: planned output (intra_threads=%u) is not "
                     "bit-identical to the scalar path\n",
                     cfg->intra_threads);
        return 1;
      }
    }
    std::printf("bit-exactness: planned output identical to scalar (%zu "
                "outputs)\n\n",
                want.size());
  }

  std::vector<VariantResult> results;
  results.push_back(measure("scalar", net, scalar_cfg, input, iters));
  results.push_back(measure("planned", net, planned_cfg, input, iters));
  results.push_back(
      measure("planned_threads", net, threaded_cfg, input, iters));
  results.push_back(measure("planned_auto", net, auto_cfg, input, iters));

  core::Table table({"Variant", "Threads", "Mean [us]", "Min [us]",
                     "Images/s"});
  for (const VariantResult& r : results) {
    table.add_row({r.name, std::to_string(r.threads),
                   core::format_number(r.mean_us, 5),
                   core::format_number(r.min_us, 5),
                   core::format_number(r.images_per_s, 5)});
  }
  std::printf("%s", table.to_string().c_str());
  const double speedup = results[1].images_per_s / results[0].images_per_s;
  std::printf("\nplanned vs scalar speedup: %.2fx\n", speedup);

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"benchmark\": \"sc_forward_lenet_small\",\n"
        << "  \"stream_length\": " << stream << ",\n"
        << "  \"iterations\": " << iters << ",\n"
        << "  \"simd\": \""
        << core::json_escape(
               sc::kernels::level_name(sc::kernels::active_level()))
        << "\",\n"
        << "  \"simd_override\": \""
        << core::json_escape(sc::kernels::env_override() != nullptr
                                 ? sc::kernels::env_override()
                                 : "")
        << "\",\n"
        << "  \"speedup_planned_vs_scalar\": " << core::json_number(speedup)
        << ",\n  \"variants\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const VariantResult& r = results[i];
      out << "    {\"name\": \"" << core::json_escape(r.name)
          << "\", \"threads\": " << r.threads
          << ", \"mean_us\": " << core::json_number(r.mean_us)
          << ", \"min_us\": " << core::json_number(r.min_us)
          << ", \"images_per_s\": " << core::json_number(r.images_per_s)
          << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline '%s'\n", check_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string baseline = buf.str();
    for (const VariantResult& r : results) {
      const double want = baseline_images_per_s(baseline, r.name);
      if (want <= 0.0) {
        continue;
      }
      const double floor = want * (1.0 - tolerance);
      if (r.images_per_s < floor) {
        // GitHub Actions annotation; informational by design (see header).
        std::printf("::warning title=sc-forward perf::variant %s at %.1f "
                    "images/s, more than %.0f%% below baseline %.1f\n",
                    r.name.c_str(), r.images_per_s, tolerance * 100.0, want);
      } else {
        std::printf("check %s: %.1f images/s vs baseline %.1f (floor %.1f) "
                    "ok\n",
                    r.name.c_str(), r.images_per_s, want, floor);
      }
    }
  }
  return 0;
}

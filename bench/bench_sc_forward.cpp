// Single-image forward-latency benchmark for the bit-level SC executor:
// scalar reference path vs the planned (packed stream plan) fast path,
// serial and with intra-image row parallelism.
//
// Before timing anything the harness verifies that every planned variant
// produces BYTE-identical output to the scalar oracle — a perf number for
// a path that changed the bits would be meaningless — and exits 1 on any
// mismatch.
//
// Measurement runs on the shared bench harness (obs/bench_harness.hpp):
// warmup + repetitions, median/MAD statistics, hardware counters where
// the host provides them, and the bench.v1 JSON schema — the same one
// `acoustic bench` emits, so one `--compare` implementation gates both.
//
// Usage:
//   bench_sc_forward [--iters N] [--stream N] [--threads N] [--json PATH]
//                    [--check BASELINE [--tolerance F]]
// --json writes the bench.v1 document to PATH (see BENCH_sc_forward.json
// for the committed baseline). --check compares against a previously
// written baseline with the shared MAD-based noise thresholds and prints
// a GitHub Actions `::warning` per regressed variant (--tolerance sets
// the relative floor, default 0.2 = 20%). Regressions warn, they never
// fail the run: the committed baseline comes from other hardware, and
// the gating comparison lives in `acoustic bench --compare`.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "obs/bench_harness.hpp"
#include "sc/kernels/kernels.hpp"
#include "sc/rng.hpp"
#include "sim/sc_network.hpp"
#include "train/models.hpp"

using namespace acoustic;

namespace {

nn::Tensor random_unit(nn::Shape shape, std::uint32_t seed) {
  nn::Tensor t(shape);
  sc::XorShift32 rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.next_double());
  }
  return t;
}

bool bytes_equal(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.shape() != b.shape()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float af = a[i];
    const float bf = b[i];
    std::uint32_t aw = 0;
    std::uint32_t bw = 0;
    std::memcpy(&aw, &af, sizeof(aw));
    std::memcpy(&bw, &bf, sizeof(bw));
    if (aw != bw) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int iters = 20;
  std::size_t stream = 128;
  unsigned threads = 4;
  std::string json_path;
  std::string check_path;
  double tolerance = 0.2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--stream") == 0 && i + 1 < argc) {
      stream = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0 && i + 1 < argc) {
      check_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: bench_sc_forward [--iters N] [--stream N] "
                   "[--threads N] [--json PATH] [--check BASELINE "
                   "[--tolerance F]]\n");
      return 2;
    }
  }
  if (iters < 1) {
    iters = 1;
  }

  std::printf("=== SC forward latency: LeNet-small, stream %zu, simd %s "
              "===\n\n",
              stream,
              sc::kernels::level_name(sc::kernels::active_level()));

  nn::Network net = train::build_lenet_small(nn::AccumMode::kOrApprox, 16);
  const nn::Tensor input = random_unit(nn::Shape{16, 16, 1}, 2024);

  sim::ScConfig base;
  base.stream_length = stream;

  sim::ScConfig scalar_cfg = base;
  scalar_cfg.exec = sim::ExecMode::kScalar;
  sim::ScConfig planned_cfg = base;
  planned_cfg.exec = sim::ExecMode::kPlanned;
  planned_cfg.intra_threads = 1;
  sim::ScConfig threaded_cfg = planned_cfg;
  threaded_cfg.intra_threads = threads;
  // Auto mode: the work-threshold gate decides per layer. On LeNet-small
  // every layer sits below the threshold, so this must track the serial
  // planned variant — the recorded regression was auto-parallelism forking
  // on layers too small to amortize the join.
  sim::ScConfig auto_cfg = planned_cfg;
  auto_cfg.intra_threads = 0;

  // Bit-exactness gate: the fast path must be a pure refactoring.
  {
    sim::ScNetwork scalar_exec(net, scalar_cfg);
    const nn::Tensor want = scalar_exec.forward(input);
    for (const sim::ScConfig* cfg : {&planned_cfg, &threaded_cfg, &auto_cfg}) {
      sim::ScNetwork planned_exec(net, *cfg);
      const nn::Tensor got = planned_exec.forward(input);
      if (!bytes_equal(got, want)) {
        std::fprintf(stderr,
                     "FAIL: planned output (intra_threads=%u) is not "
                     "bit-identical to the scalar path\n",
                     cfg->intra_threads);
        return 1;
      }
    }
    std::printf("bit-exactness: planned output identical to scalar (%zu "
                "outputs)\n\n",
                want.size());
  }

  obs::BenchOptions bopt = obs::BenchOptions::from_env();
  bopt.iters = iters;
  obs::Bench bench("sc_forward_lenet_small", bopt);
  bench.meta().simd =
      sc::kernels::level_name(sc::kernels::active_level());

  struct Variant {
    const char* name;
    const sim::ScConfig* cfg;
  };
  for (const Variant& variant :
       std::vector<Variant>{{"scalar", &scalar_cfg},
                            {"planned", &planned_cfg},
                            {"planned_threads", &threaded_cfg},
                            {"planned_auto", &auto_cfg}}) {
    sim::ScNetwork exec(net, *variant.cfg);
    // Prime the weight plans + scratch arena; the timed steady state is
    // allocation-free (asserted by tests/sim/alloc_test.cpp).
    nn::Tensor out;
    exec.forward_into(input, out);
    volatile std::size_t sink = 0;
    bench.run(variant.name, [&] {
      exec.forward_into(input, out);
      sink = sink + out.size();
    });
  }

  const obs::BenchDocument& doc = bench.document();
  core::Table table({"Variant", "Median [us]", "MAD [us]", "Min [us]",
                     "Images/s"});
  for (const obs::BenchEntry& entry : doc.entries) {
    table.add_row({entry.name,
                   core::format_number(entry.stats.median, 5),
                   core::format_number(entry.stats.mad, 4),
                   core::format_number(entry.stats.min, 5),
                   core::format_number(entry.stats.median > 0.0
                                           ? 1e6 / entry.stats.median
                                           : 0.0, 5)});
  }
  std::printf("%s", table.to_string().c_str());
  const obs::BenchEntry* scalar = doc.find("scalar");
  const obs::BenchEntry* planned = doc.find("planned");
  if (scalar != nullptr && planned != nullptr &&
      planned->stats.median > 0.0) {
    std::printf("\nplanned vs scalar speedup: %.2fx\n",
                scalar->stats.median / planned->stats.median);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    out << obs::to_json(doc);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!check_path.empty()) {
    std::ifstream in(check_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline '%s'\n", check_path.c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    obs::BenchDocument baseline;
    try {
      baseline = obs::parse_bench_json(buf.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "baseline '%s': %s\n", check_path.c_str(),
                   e.what());
      return 1;
    }
    obs::CompareOptions copt;
    copt.rel_floor = tolerance;
    const obs::CompareResult cmp = obs::compare(doc, baseline, copt);
    for (const obs::CompareEntry& entry : cmp.entries) {
      if (entry.verdict == obs::Verdict::kRegressed) {
        // GitHub Actions annotation; informational by design (see header).
        std::printf("::warning title=sc-forward perf::variant %s at %.5g "
                    "us median, beyond the %.5g us noise threshold over "
                    "baseline %.5g\n",
                    entry.name.c_str(), entry.cur_median, entry.threshold,
                    entry.base_median);
      } else {
        std::printf("check %s: %.5g us vs baseline %.5g (threshold %.5g) "
                    "%s\n",
                    entry.name.c_str(), entry.cur_median, entry.base_median,
                    entry.threshold, obs::verdict_name(entry.verdict));
      }
    }
    if (!cmp.host_match) {
      std::printf("note: baseline from different hardware/build — verdicts "
                  "informational\n");
    }
  }
  return 0;
}

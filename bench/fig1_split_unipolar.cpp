// Figure 1 reproduction: circuit-level walkthrough of the split-unipolar
// two-phase MAC.
//
// The paper's example: a 2-wide MAC with activations {0.75, 0.25}, weights
// {+0.5, -0.5} and stream length 8 per phase. We print the bit-level trace
// (activation streams, sign-gated weight-magnitude streams, AND products,
// OR accumulation, up/down counter) for the paper's parameters and then
// re-run the same MAC at increasing stream lengths to show convergence to
// the ideal 0.75*0.5 - 0.25*0.5 = 0.25.
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "sim/sc_mac.hpp"

using namespace acoustic;

namespace {

void print_stream(const char* label, const sc::BitStream& s) {
  std::printf("  %-22s %s  (%.3f)\n", label, s.to_string().c_str(),
              s.value());
}

}  // namespace

int main() {
  std::printf("=== Figure 1: split-unipolar MAC, bit-level trace ===\n\n");
  const std::vector<double> acts{0.75, 0.25};
  const std::vector<double> wgts{0.5, -0.5};

  sim::ScConfig cfg;
  cfg.stream_length = 16;  // 8 bits per phase, as drawn in the figure
  cfg.sng_width = 8;
  const sim::SplitMacTrace trace = sim::split_unipolar_mac(acts, wgts, cfg);

  std::printf("phase + (positive weights active, counter counts up):\n");
  print_stream("act0 stream (0.75)", trace.act_pos[0]);
  print_stream("wgt0 |w|=0.5 stream", trace.weight_mag[0]);
  print_stream("product0 = a0 & w0", trace.product[0]);
  print_stream("OR accumulation", trace.or_pos);
  std::printf("  counter after + phase: %+lld\n\n",
              static_cast<long long>(trace.count_after_pos));

  std::printf("phase - (negative weights active, counter counts down):\n");
  print_stream("act1 stream (0.25)", trace.act_neg[1]);
  print_stream("wgt1 |w|=0.5 stream", trace.weight_mag[1]);
  print_stream("product1 = a1 & w1", trace.product[1]);
  print_stream("OR accumulation", trace.or_neg);
  std::printf("  counter final: %+lld\n",
              static_cast<long long>(trace.count_final));
  std::printf("  recovered value: %+.4f (ideal %.4f)\n\n", trace.result,
              0.75 * 0.5 - 0.25 * 0.5);

  std::printf("convergence with stream length (same MAC):\n");
  core::Table table({"stream length", "recovered", "|error| vs ideal"});
  for (std::size_t len : {16u, 32u, 64u, 128u, 256u, 512u, 1024u, 4096u}) {
    sim::ScConfig c;
    c.stream_length = len;
    c.sng_width = 10;
    const sim::SplitMacTrace t = sim::split_unipolar_mac(acts, wgts, c);
    table.add_row({std::to_string(len), core::format_number(t.result, 4),
                   core::format_number(std::abs(t.result - 0.25), 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper reference: Fig. 1 recovers 0.25 from an 8-bit-per-"
              "phase example;\nthe counter value divided by the phase "
              "length estimates the signed dot product.\n");
  return 0;
}

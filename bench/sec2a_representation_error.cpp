// Section II-A claim: unipolar representation needs >= 2x shorter streams
// than bipolar for the same RMS error.
//
// Monte-Carlo sweep over values and stream lengths, compared against the
// paper's closed forms sqrt(v(1-v)/n) and sqrt((1-v^2)/n_b), plus the
// derived "length advantage": the bipolar length needed to match the
// unipolar error at length n.
//
// The (v, n) grid is embarrassingly parallel; each cell runs its trials on
// the shared runtime::ThreadPool with fixed per-trial seeds, so the output
// is identical for any thread count.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "runtime/thread_pool.hpp"
#include "sc/representation.hpp"

using namespace acoustic;

namespace {

double empirical_rms(double v, std::size_t length, bool bipolar,
                     int trials) {
  double se = 0.0;
  for (int t = 0; t < trials; ++t) {
    sc::Sng sng(16, 0x1000u + static_cast<std::uint32_t>(t) * 7919u +
                        (bipolar ? 0x8000u : 0u));
    double got;
    if (bipolar) {
      got = sc::decode_bipolar(sc::encode_bipolar(v, length, sng));
    } else {
      got = sng.generate(v, length).value();
    }
    se += (got - v) * (got - v);
  }
  return std::sqrt(se / trials);
}

struct Cell {
  double v = 0.0;
  std::size_t n = 0;
  double uni_rms = 0.0;
  double bip_rms = 0.0;
};

}  // namespace

int main() {
  std::printf("=== Section II-A: unipolar vs bipolar representation error "
              "===\n\n");
  constexpr int kTrials = 300;

  std::vector<Cell> cells;
  for (double v : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    for (std::size_t n : {64u, 128u, 256u, 512u}) {
      cells.push_back({v, n, 0.0, 0.0});
    }
  }

  runtime::ThreadPool pool(0);
  pool.parallel_for(cells.size(), [&](std::size_t i, unsigned /*worker*/) {
    cells[i].uni_rms = empirical_rms(cells[i].v, cells[i].n, false, kTrials);
    cells[i].bip_rms = empirical_rms(cells[i].v, cells[i].n, true, kTrials);
  });

  core::Table table({"v", "n", "unipolar RMS (MC)", "analytical",
                     "bipolar RMS (MC)", "analytical", "bipolar len for "
                     "equal err"});
  for (const Cell& c : cells) {
    // n_b with bipolar error == unipolar error at n:
    // (1-v^2)/n_b = v(1-v)/n  =>  n_b = n (1+v)/v.
    const double equal_len = static_cast<double>(c.n) * (1.0 + c.v) / c.v;
    table.add_row({core::format_number(c.v, 2), std::to_string(c.n),
                   core::format_number(c.uni_rms, 3),
                   core::format_number(sc::unipolar_rms_error(c.v, c.n), 3),
                   core::format_number(c.bip_rms, 3),
                   core::format_number(sc::bipolar_rms_error(c.v, c.n), 3),
                   core::format_number(equal_len, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Paper shape: the bipolar stream must be n(1+v)/v long to match an\n"
      "n-bit unipolar encoding — at least 2x for any v <= 1, which is why\n"
      "split-unipolar halves stream length for equal accuracy (II-A).\n");
  return 0;
}

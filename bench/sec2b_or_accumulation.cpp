// Section II-B claims:
//  1. For a 3x3x256 = 2304-wide accumulation, OR has ~8x less absolute
//     error than MUX-based accumulation (Monte-Carlo).
//  2. An OR-accumulating MAC is far smaller than parallel-counter (APC,
//     SC-DCNN [12]) or early-binary-conversion [21] designs: 4.2x and
//     23.8x respectively at 128-wide.
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "energy/component_models.hpp"
#include "sc/apc.hpp"
#include "sc/gates.hpp"
#include "sc/rng.hpp"
#include "sc/sng.hpp"

using namespace acoustic;

namespace {

struct ErrorStats {
  double or_abs_err = 0.0;
  double mux_abs_err = 0.0;
  double apc_abs_err = 0.0;
};

/// One trial: `width` random product-magnitude values accumulated by OR
/// and by MUX, each scored on the *recovered dot-product sum* — the value
/// the network actually consumes. MUX recovers it as n * stream value
/// (undoing the 1/n scaling); OR recovers it as -ln(1 - stream value)
/// (inverting the known saturation, which training absorbs, II-D).
ErrorStats accumulate_trial(int width, std::size_t length,
                            std::uint32_t seed) {
  sc::XorShift32 value_rng(seed);
  std::vector<sc::BitStream> streams;
  std::vector<double> values;
  streams.reserve(static_cast<std::size_t>(width));
  double sum = 0.0;
  for (int i = 0; i < width; ++i) {
    // CNN product magnitudes (activation x weight), sum ~ 1 across the
    // 2304-wide receptive field.
    const double v = 2.0 * value_rng.next_double() / width;
    values.push_back(v);
    sum += v;
    sc::Sng sng(16, seed * 2654435761u + static_cast<std::uint32_t>(i) + 1);
    streams.push_back(sng.generate(v, length));
  }

  const sc::BitStream or_out = sc::or_accumulate(streams);
  sc::XorShift32 sel(seed ^ 0xABCDu);
  const sc::BitStream mux_out =
      sc::mux_accumulate(std::span<const sc::BitStream>(streams), sel);

  ErrorStats stats;
  const double or_est =
      -std::log(std::max(1.0 - or_out.value(), 1.0 / (2.0 * length)));
  const double mux_est = mux_out.value() * static_cast<double>(width);
  stats.or_abs_err = std::fabs(or_est - sum);
  stats.mux_abs_err = std::fabs(mux_est - sum);
  // APC (SC-DCNN style): numerically near-exact, but costs 4.2x MAC area.
  stats.apc_abs_err =
      std::fabs(apc_value(std::span<const sc::BitStream>(streams)) - sum);
  return stats;
}

}  // namespace

int main() {
  std::printf("=== Section II-B: OR vs MUX accumulation, MAC area ===\n\n");

  constexpr int kWidth = 2304;  // 3x3x256, as in the paper's analysis
  constexpr int kTrials = 24;
  core::Table table({"stream length", "OR mean |sum err|",
                     "MUX mean |sum err|", "MUX/OR",
                     "APC (4.2x area) |sum err|"});
  for (std::size_t length : {128u, 256u, 512u}) {
    double or_err = 0.0;
    double mux_err = 0.0;
    double apc_err = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const ErrorStats s = accumulate_trial(
          kWidth, length, 0xC0FFEE + static_cast<std::uint32_t>(t));
      or_err += s.or_abs_err;
      mux_err += s.mux_abs_err;
      apc_err += s.apc_abs_err;
    }
    or_err /= kTrials;
    mux_err /= kTrials;
    apc_err /= kTrials;
    table.add_row({std::to_string(length), core::format_number(or_err, 3),
                   core::format_number(mux_err, 3),
                   core::format_number(mux_err / or_err, 3),
                   core::format_number(apc_err, 3)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Paper: for 2304-wide accumulation, OR shows ~8x less "
              "absolute error than MUX.\nThe mechanism: MUX scales the sum "
              "by 1/2304, so recovering it multiplies\nthe stream noise "
              "back up by 2304; OR is scale-free, paying only its\n"
              "(training-absorbed) saturation.\n\n");

  // --- MAC area comparison at 128-wide accumulation ---
  const auto k = energy::tsmc28();
  const double or_mac_um2 = 128.0 * k.mac_lane_um2;
  // APC-based MAC (SC-DCNN style): an AND per input plus a 128:8 parallel
  // counter (~2 full-adder gate pairs per input) and registers.
  const double apc_mac_um2 = or_mac_um2 * 4.2;
  // Early binary conversion (Sim & Lee [21]): per-input counter + adder
  // tree in binary domain.
  const double binary_mac_um2 = or_mac_um2 * 23.8;
  core::Table area({"MAC style (128-wide)", "area [um2]",
                    "vs OR-based"});
  area.add_row({"ACOUSTIC OR-based", core::format_number(or_mac_um2, 4),
                "1.0x"});
  area.add_row({"APC-based (SC-DCNN [12])",
                core::format_number(apc_mac_um2, 4), "4.2x"});
  area.add_row({"binary-convert (Sim&Lee [21])",
                core::format_number(binary_mac_um2, 4), "23.8x"});
  std::printf("%s\n", area.to_string().c_str());
  std::printf("The 4.2x / 23.8x factors are the paper's synthesized "
              "ratios; the OR-based\nabsolute area comes from this "
              "repository's 28nm-calibrated lane model.\n");
  return 0;
}

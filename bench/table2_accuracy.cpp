// Table II reproduction: accuracy of ACOUSTIC's fully-stochastic inference
// vs an 8-bit fixed-point baseline, as a function of stream length.
//
// Datasets are synthetic stand-ins with the paper's tensor shapes and
// 10-class structure (see DESIGN.md section 3): the arithmetic-induced gap
// between fixed-point and stochastic execution — Table II's signal — does
// not depend on which images are classified.
//
// Per paper methodology (IV-A/IV-B): each network is trained with the
// OR-approximate arithmetic of section II-D (Eq. 1); the "8-bit Fixed Pt"
// column evaluates the *sum-mode* network quantized to 8 bits; the
// ACOUSTIC columns run the bit-level functional simulator at each stream
// length (the paper's convention: "512" means 256x2 split-unipolar).
//
// All stochastic evaluations go through sim::BatchEvaluator, which shards
// the test set across per-thread backend clones — results are bit-identical
// for any thread count. Usage:
//   table2_accuracy [--threads N] [--json PATH]
// --json writes every table cell as a bench.v1 document (the shared
// schema of obs/bench_harness.hpp), e.g. to BENCH_table2.json: one
// higher-is-better "percent" entry per (network, stream length) plus the
// fixed-point baseline cells — so `--compare` tooling can gate accuracy
// trajectories exactly like latency ones. Accuracies are deterministic
// (MAD 0 by construction); comparisons fall back to the relative floor.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "obs/bench_harness.hpp"
#include "sim/backend.hpp"
#include "sim/batch_evaluator.hpp"
#include "train/models.hpp"
#include "train/trainer.hpp"

using namespace acoustic;

namespace {

struct Row {
  const char* network;
  const char* slug;  ///< bench.v1 entry-name segment
  const char* dataset;
  nn::Network net;
  train::Dataset test;
  float fixed8 = 0.0f;
};

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // hardware concurrency
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: table2_accuracy [--threads N] [--json PATH]\n");
      return 2;
    }
  }

  std::printf("=== Table II: accuracy comparisons ===\n\n");
  std::printf("training (synthetic datasets; OR-approximate arithmetic, "
              "section II-D)...\n");

  // OR-approx training is stable at a high rate (saturation bounds the
  // logits); the unbounded sum-mode baseline needs a gentler schedule.
  train::TrainConfig cfg;
  cfg.epochs = 10;
  cfg.learning_rate = 0.05f;
  cfg.lr_decay = 0.9f;
  train::TrainConfig fixed_cfg;
  fixed_cfg.epochs = 20;
  fixed_cfg.learning_rate = 0.01f;
  fixed_cfg.lr_decay = 0.95f;

  std::vector<Row> rows;

  {
    Row r{"LeNet-5 (small)", "lenet5_small", "SynthDigits",
          train::build_lenet_small(nn::AccumMode::kOrApprox, 16),
          train::make_synth_digits(300, 999, 16)};
    const train::Dataset tr = train::make_synth_digits(1200, 42, 16);
    (void)train::fit(r.net, tr, cfg);
    // 8-bit fixed-point baseline: conventionally-trained (sum-mode) twin.
    nn::Network fixed = train::build_lenet_small(nn::AccumMode::kSum, 16);
    (void)train::fit(fixed, tr, fixed_cfg);
    r.fixed8 = train::evaluate_quantized(fixed, r.test, 8);
    rows.push_back(std::move(r));
  }
  {
    Row r{"SVHN CNN (small)", "svhn_small", "SynthObjects-A",
          train::build_cifar_small(nn::AccumMode::kOrApprox, 16, 31),
          train::make_synth_objects(300, 777, 16)};
    const train::Dataset tr = train::make_synth_objects(1200, 11, 16);
    (void)train::fit(r.net, tr, cfg);
    nn::Network fixed = train::build_cifar_small(nn::AccumMode::kSum, 16, 31);
    (void)train::fit(fixed, tr, fixed_cfg);
    r.fixed8 = train::evaluate_quantized(fixed, r.test, 8);
    rows.push_back(std::move(r));
  }
  {
    Row r{"CIFAR-10 CNN (small)", "cifar10_small", "SynthObjects-B",
          train::build_cifar_small(nn::AccumMode::kOrApprox, 16, 57),
          train::make_synth_objects(300, 888, 16)};
    const train::Dataset tr = train::make_synth_objects(1200, 23, 16);
    (void)train::fit(r.net, tr, cfg);
    nn::Network fixed = train::build_cifar_small(nn::AccumMode::kSum, 16, 57);
    (void)train::fit(fixed, tr, fixed_cfg);
    r.fixed8 = train::evaluate_quantized(fixed, r.test, 8);
    rows.push_back(std::move(r));
  }

  {
    // Deep-network row: the residual model runs its skip connections
    // (counter-preload adds) through the same graph executor as the
    // plain stacks — the row pins Table II's trend on a topology with
    // branches, not just linear conv chains.
    Row r{"ResNet (tiny)", "resnet_tiny", "SynthObjects-C",
          train::build_resnet_tiny(nn::AccumMode::kOrApprox, 16, 91),
          train::make_synth_objects(300, 555, 16)};
    const train::Dataset tr = train::make_synth_objects(1200, 37, 16);
    (void)train::fit(r.net, tr, cfg);
    nn::Network fixed = train::build_resnet_tiny(nn::AccumMode::kSum, 16, 91);
    (void)train::fit(fixed, tr, fixed_cfg);
    r.fixed8 = train::evaluate_quantized(fixed, r.test, 8);
    rows.push_back(std::move(r));
  }

  // One evaluator (and thread pool) for every cell of the table.
  sim::BatchEvaluator evaluator(threads);
  std::printf("evaluating on %u thread%s...\n", evaluator.threads(),
              evaluator.threads() == 1 ? "" : "s");

  // Accuracy cells are deterministic, so record() single-observation
  // entries carry them; wall-clock data deliberately stays out of the
  // document (it would differ per machine for no analytic value here).
  obs::Bench bench("table2_accuracy", obs::BenchOptions::from_env());

  core::Table table({"Network", "Dataset", "Stream", "8-bit Fixed Pt [%]",
                     "ACOUSTIC [%]"});
  for (Row& r : rows) {
    bool first = true;
    bench.record(std::string("table2/") + r.slug + "/fixed8/accuracy",
                 100.0 * r.fixed8, "percent", /*lower_is_better=*/false);
    for (std::size_t len : {32u, 64u, 128u, 256u, 512u}) {
      sim::ScConfig sc;
      sc.stream_length = len;
      const auto backend = sim::make_sc_backend(r.net, sc);
      const sim::EvalResult result = evaluator.evaluate(*backend, r.test);
      table.add_row({first ? r.network : "", first ? r.dataset : "",
                     std::to_string(len),
                     first ? core::format_number(100.0 * r.fixed8, 4) : "",
                     core::format_number(100.0 * result.accuracy, 4)});
      bench.record(std::string("table2/") + r.slug + "/stream" +
                       std::to_string(len) + "/accuracy",
                   100.0 * result.accuracy, "percent",
                   /*lower_is_better=*/false);
      first = false;
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nPaper shape (Table II): stochastic accuracy climbs toward the\n"
      "8-bit fixed-point baseline as streams lengthen; by 512 (256x2) the\n"
      "gap is within a couple of points, exactly as the paper reports for\n"
      "LeNet-5/MNIST (99.3 vs 99.2), SVHN (89.02 vs 90.29) and CIFAR-10\n"
      "(78.04 vs 79.9).\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    const obs::BenchDocument& doc = bench.document();
    out << obs::to_json(doc);
    std::printf("\nwrote %zu accuracy entries to %s\n", doc.entries.size(),
                json_path.c_str());
  }
  return 0;
}

// Table II reproduction: accuracy of ACOUSTIC's fully-stochastic inference
// vs an 8-bit fixed-point baseline, as a function of stream length.
//
// Datasets are synthetic stand-ins with the paper's tensor shapes and
// 10-class structure (see DESIGN.md section 3): the arithmetic-induced gap
// between fixed-point and stochastic execution — Table II's signal — does
// not depend on which images are classified.
//
// Per paper methodology (IV-A/IV-B): each network is trained with the
// OR-approximate arithmetic of section II-D (Eq. 1); the "8-bit Fixed Pt"
// column evaluates the *sum-mode* network quantized to 8 bits; the
// ACOUSTIC columns run the bit-level functional simulator at each stream
// length (the paper's convention: "512" means 256x2 split-unipolar).
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "sim/evaluate.hpp"
#include "train/models.hpp"
#include "train/trainer.hpp"

using namespace acoustic;

namespace {

struct Row {
  const char* network;
  const char* dataset;
  nn::Network net;
  train::Dataset test;
  float fixed8 = 0.0f;
};

float sc_accuracy(nn::Network& net, const train::Dataset& test,
                  std::size_t stream_length) {
  sim::ScConfig cfg;
  cfg.stream_length = stream_length;
  return sim::evaluate_sc(net, cfg, test);
}

}  // namespace

int main() {
  std::printf("=== Table II: accuracy comparisons ===\n\n");
  std::printf("training (synthetic datasets; OR-approximate arithmetic, "
              "section II-D)...\n");

  // OR-approx training is stable at a high rate (saturation bounds the
  // logits); the unbounded sum-mode baseline needs a gentler schedule.
  train::TrainConfig cfg;
  cfg.epochs = 10;
  cfg.learning_rate = 0.05f;
  cfg.lr_decay = 0.9f;
  train::TrainConfig fixed_cfg;
  fixed_cfg.epochs = 20;
  fixed_cfg.learning_rate = 0.01f;
  fixed_cfg.lr_decay = 0.95f;

  std::vector<Row> rows;

  {
    Row r{"LeNet-5 (small)", "SynthDigits",
          train::build_lenet_small(nn::AccumMode::kOrApprox, 16),
          train::make_synth_digits(300, 999, 16)};
    const train::Dataset tr = train::make_synth_digits(1200, 42, 16);
    (void)train::fit(r.net, tr, cfg);
    // 8-bit fixed-point baseline: conventionally-trained (sum-mode) twin.
    nn::Network fixed = train::build_lenet_small(nn::AccumMode::kSum, 16);
    (void)train::fit(fixed, tr, fixed_cfg);
    r.fixed8 = train::evaluate_quantized(fixed, r.test, 8);
    rows.push_back(std::move(r));
  }
  {
    Row r{"SVHN CNN (small)", "SynthObjects-A",
          train::build_cifar_small(nn::AccumMode::kOrApprox, 16, 31),
          train::make_synth_objects(300, 777, 16)};
    const train::Dataset tr = train::make_synth_objects(1200, 11, 16);
    (void)train::fit(r.net, tr, cfg);
    nn::Network fixed = train::build_cifar_small(nn::AccumMode::kSum, 16, 31);
    (void)train::fit(fixed, tr, fixed_cfg);
    r.fixed8 = train::evaluate_quantized(fixed, r.test, 8);
    rows.push_back(std::move(r));
  }
  {
    Row r{"CIFAR-10 CNN (small)", "SynthObjects-B",
          train::build_cifar_small(nn::AccumMode::kOrApprox, 16, 57),
          train::make_synth_objects(300, 888, 16)};
    const train::Dataset tr = train::make_synth_objects(1200, 23, 16);
    (void)train::fit(r.net, tr, cfg);
    nn::Network fixed = train::build_cifar_small(nn::AccumMode::kSum, 16, 57);
    (void)train::fit(fixed, tr, fixed_cfg);
    r.fixed8 = train::evaluate_quantized(fixed, r.test, 8);
    rows.push_back(std::move(r));
  }

  core::Table table({"Network", "Dataset", "Stream", "8-bit Fixed Pt [%]",
                     "ACOUSTIC [%]"});
  for (Row& r : rows) {
    bool first = true;
    for (std::size_t len : {32u, 64u, 128u, 256u, 512u}) {
      const float acc = sc_accuracy(r.net, r.test, len);
      table.add_row({first ? r.network : "", first ? r.dataset : "",
                     std::to_string(len),
                     first ? core::format_number(100.0 * r.fixed8, 4) : "",
                     core::format_number(100.0 * acc, 4)});
      first = false;
    }
  }
  std::printf("\n%s", table.to_string().c_str());
  std::printf(
      "\nPaper shape (Table II): stochastic accuracy climbs toward the\n"
      "8-bit fixed-point baseline as streams lengthen; by 512 (256x2) the\n"
      "gap is within a couple of points, exactly as the paper reports for\n"
      "LeNet-5/MNIST (99.3 vs 99.2), SVHN (89.02 vs 90.29) and CIFAR-10\n"
      "(78.04 vs 79.9).\n");
  return 0;
}

// Batching ablation (paper III-B/III-D): FC layers cannot reuse weights
// within a frame, so their 58-123 MB weight streams dominate AlexNet/VGG
// latency at batch 1. Batching lets the M MACs of an array process M
// samples per weight load and amortizes every DRAM transfer across the
// batch. Conv-dominated networks gain almost nothing — their weights are
// already reused across output positions.
#include <cstdio>

#include "core/accelerator.hpp"
#include "core/report.hpp"

using namespace acoustic;

int main() {
  std::printf("=== Ablation: batch size vs throughput and efficiency "
              "===\n\n");

  const std::vector<nn::NetworkDesc> nets{
      nn::alexnet(), nn::vgg16(), nn::resnet18(),
      nn::cifar10_cnn().conv_only()};

  for (const nn::NetworkDesc& net : nets) {
    core::Table table({"batch", "Fr/s (per frame)", "Fr/J (per frame)",
                       "latency/frame [ms]", "DRAM/frame [MB]"});
    for (int batch : {1, 2, 4, 8, 16, 32}) {
      perf::ArchConfig arch = perf::lp();
      arch.batch = batch;
      const core::Accelerator accel(arch);
      const core::InferenceCost cost = accel.run(net);
      table.add_row(
          {std::to_string(batch),
           core::format_number(cost.frames_per_s, 4),
           core::format_number(cost.frames_per_j, 4),
           core::format_number(cost.latency_s * 1e3, 4),
           core::format_number(
               static_cast<double>(cost.perf.dram_bytes) /
                   (1024.0 * 1024.0 * batch), 4)});
    }
    std::printf("%s\n%s\n", net.name.c_str(), table.to_string().c_str());
  }
  std::printf("Shape: AlexNet/VGG-16 (large FC layers) gain several-fold "
              "per-frame\nthroughput up to batch 16 (= M, the MACs per "
              "array) as FC weight streams\namortize; ResNet-18 gains "
              "modestly (one small FC); the conv-only\nCIFAR-10 network "
              "is flat — conv weights were already reused.\n");
  return 0;
}

// Figure 4 reproduction: conv-layer latency vs clock frequency for seven
// external-memory interfaces.
//
// Workload (paper IV / Fig. 4 caption): process a convolutional layer with
// 16x16x512 inputs and 512 3x3x512 kernels while pre-loading 512 3x3x512
// kernels for the subsequent layer, with temporally-unrolled 256-long
// split-unipolar streams. Latency becomes memory-bound below ~300 MHz for
// DDR3-class interfaces; HBM never binds in this range.
#include <cstdio>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "perf/codegen.hpp"
#include "perf/perf_sim.hpp"

using namespace acoustic;

int main() {
  std::printf("=== Figure 4: latency vs clock frequency and memory "
              "interface ===\n\n");

  nn::LayerDesc layer;
  layer.kind = nn::OpKind::kConv2D;
  layer.label = "conv3x3x512";
  layer.in_h = 16;
  layer.in_w = 16;
  layer.in_c = 512;
  layer.kernel = 3;
  layer.padding = 1;
  layer.out_c = 512;

  const std::uint64_t preload_bytes = layer.weight_count();

  std::vector<std::string> header{"Clock [MHz]"};
  for (const perf::DramSpec& dram : perf::figure4_interfaces()) {
    header.push_back(dram.name);
  }
  core::Table table(header);

  for (int mhz = 100; mhz <= 1000; mhz += 100) {
    std::vector<std::string> row{std::to_string(mhz)};
    for (const perf::DramSpec& dram : perf::figure4_interfaces()) {
      perf::ArchConfig arch = perf::lp();
      arch.clock_mhz = mhz;
      arch.dram = dram;
      const perf::LayerMapping m = perf::map_layer(layer, arch, true, true);
      const isa::Program prog = perf::generate_layer_program(
          layer, arch, m, preload_bytes, /*load_input=*/true,
          /*store_output=*/true);
      const perf::PerfResult r = perf::simulate(prog, arch);
      row.push_back(core::format_number(r.latency_s * 1e3, 4));
    }
    table.add_row(std::move(row));
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n[latency in ms]\n");
  std::printf("Paper shape: DDR3 interfaces flatten (memory-bound) as the "
              "clock rises —\nthe knee sits near 300 MHz for mid-range "
              "DDR3; HBM stays compute-bound\nacross the whole sweep, so "
              "its latency keeps falling ~1/f.\n");
  return 0;
}

// Table IV reproduction: ACOUSTIC ULP vs MDL-CNN (time-domain) and
// Conv-RAM (analog in-SRAM) on the conv layers of LeNet-5 and the small
// CIFAR-10 CNN.
//
//   table4_performance_ulp [--json PATH]
// --json writes one machine-readable record per workload (the ACOUSTIC
// InferenceCost plus each baseline's throughput/efficiency point).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/ulp_accelerators.hpp"
#include "core/accelerator.hpp"
#include "core/report.hpp"

using namespace acoustic;

namespace {

std::string cell(double v, bool available, int digits = 4) {
  return available ? core::format_number(v, digits) : "N/A";
}

std::string baseline_json(double frames_per_j, double frames_per_s,
                          bool available) {
  if (!available) {
    return "null";
  }
  std::string out = "{\"frames_per_j\": ";
  out += core::json_number(frames_per_j);
  out += ", \"frames_per_s\": ";
  out += core::json_number(frames_per_s);
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: table4_performance_ulp [--json PATH]\n");
      return 2;
    }
  }

  std::printf("=== Table IV: ACOUSTIC ULP vs MDL-CNN and Conv-RAM "
              "(conv layers) ===\n\n");

  const auto mdl = baselines::mdl_cnn_spec();
  const auto cram = baselines::conv_ram_spec();
  const core::Accelerator ulp(perf::ulp());

  const nn::NetworkDesc lenet = nn::lenet5().conv_only();
  const nn::NetworkDesc cifar = nn::cifar10_cnn().conv_only();
  const core::InferenceCost lenet_cost = ulp.run(lenet);
  const core::InferenceCost cifar_cost = ulp.run(cifar);

  // Table IV reports ACOUSTIC's power as the workload power (energy over
  // latency on the LeNet-5 conv layers), like the silicon baselines report
  // measured power.
  const double ulp_power_mw =
      1e3 * lenet_cost.on_chip_energy_j / lenet_cost.latency_s;

  core::Table spec({"", "Conv-RAM", "MDL CNN", "ACOUSTIC ULP"});
  spec.add_row({"Domain", cram.domain, mdl.domain, "SC"});
  spec.add_row({"Precision [A/W]", cram.precision, mdl.precision,
                "8b/8b SC"});
  spec.add_row({"Area [mm2]", core::format_number(cram.area_mm2, 3),
                core::format_number(mdl.area_mm2, 3),
                core::format_number(energy::total_area_mm2(perf::ulp()), 2)});
  spec.add_row({"Power [mW]", core::format_number(cram.power_mw, 3),
                core::format_number(mdl.power_mw, 3),
                core::format_number(ulp_power_mw, 2)});
  spec.add_row({"Clock [MHz]", core::format_number(cram.clock_mhz, 3),
                core::format_number(mdl.clock_mhz, 3), "200"});
  std::printf("%s\n", spec.to_string().c_str());

  core::Table table({"Network", "Metric", "Conv-RAM", "MDL CNN",
                     "ACOUSTIC ULP"});
  const auto mdl_lenet = baselines::mdl_cnn_run(lenet);
  const auto cram_lenet = baselines::conv_ram_run(lenet);
  table.add_row({"LeNet-5", "Fr/J",
                 cell(cram_lenet.frames_per_j, cram_lenet.available, 3),
                 cell(mdl_lenet.frames_per_j, mdl_lenet.available, 3),
                 core::format_number(lenet_cost.frames_per_j, 3)});
  table.add_row({"", "Fr/s",
                 cell(cram_lenet.frames_per_s, cram_lenet.available),
                 cell(mdl_lenet.frames_per_s, mdl_lenet.available),
                 core::format_number(lenet_cost.frames_per_s, 5)});
  const auto mdl_cifar = baselines::mdl_cnn_run(cifar);
  const auto cram_cifar = baselines::conv_ram_run(cifar);
  table.add_row({"CIFAR-10 CNN", "Fr/J",
                 cell(cram_cifar.frames_per_j, cram_cifar.available, 3),
                 cell(mdl_cifar.frames_per_j, mdl_cifar.available, 3),
                 core::format_number(cifar_cost.frames_per_j, 3)});
  table.add_row({"", "Fr/s",
                 cell(cram_cifar.frames_per_s, cram_cifar.available),
                 cell(mdl_cifar.frames_per_s, mdl_cifar.available),
                 core::format_number(cifar_cost.frames_per_s, 4)});
  std::printf("%s\n", table.to_string().c_str());

  std::printf("headline ratios (paper / measured):\n");
  std::printf("  speedup vs MDL-CNN on LeNet-5:   paper 123.9x, measured "
              "%.1fx\n", lenet_cost.frames_per_s / mdl_lenet.frames_per_s);
  std::printf("  speedup vs Conv-RAM on LeNet-5:  paper   8.2x, measured "
              "%.1fx\n", lenet_cost.frames_per_s / cram_lenet.frames_per_s);
  std::printf("  efficiency vs MDL-CNN:           paper  1.24x, measured "
              "%.2fx\n", lenet_cost.frames_per_j / mdl_lenet.frames_per_j);
  std::printf("  efficiency vs Conv-RAM:          paper  1.04x, measured "
              "%.2fx\n", lenet_cost.frames_per_j / cram_lenet.frames_per_j);
  std::printf("\nNote: ACOUSTIC runs 8-bit weights AND activations; the\n"
              "baselines binarize weights (the paper notes a 1-3%% MNIST\n"
              "accuracy cost for them).\n");

  if (!json_path.empty()) {
    std::vector<std::string> records;
    const struct {
      const char* name;
      const core::InferenceCost& cost;
      const baselines::Performance& mdl_run;
      const baselines::Performance& cram_run;
    } rows[] = {{"LeNet-5 (conv)", lenet_cost, mdl_lenet, cram_lenet},
                {"CIFAR-10 CNN (conv)", cifar_cost, mdl_cifar, cram_cifar}};
    for (const auto& row : rows) {
      std::string rec = "    {\"network\": \"";
      rec += core::json_escape(row.name);
      rec += "\",\n     \"acoustic_ulp\": ";
      rec += core::to_json(row.cost);
      rec += ",\n     \"mdl_cnn\": ";
      rec += baseline_json(row.mdl_run.frames_per_j, row.mdl_run.frames_per_s,
                           row.mdl_run.available);
      rec += ",\n     \"conv_ram\": ";
      rec += baseline_json(row.cram_run.frames_per_j,
                           row.cram_run.frames_per_s, row.cram_run.available);
      rec += "}";
      records.push_back(std::move(rec));
    }
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"table4_performance_ulp\",\n"
           "  \"arch\": \"ACOUSTIC-ULP\",\n  \"power_mw\": "
        << core::json_number(ulp_power_mw) << ",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < records.size(); ++i) {
      out << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %zu workload records to %s\n", records.size(),
                json_path.c_str());
  }
  return 0;
}

// Google-benchmark microbenchmarks of the reproduction's hot primitives:
// stream generation, single-gate arithmetic, the split-unipolar MAC, the
// bit-level network executor and the performance simulator. These guard
// the simulator's own throughput (the paper notes SC is "extremely slow to
// accurately simulate in software" — IV-A — which is why the word-parallel
// functional simulator exists).
#include <benchmark/benchmark.h>

#include "nn/activation.hpp"
#include "nn/model_zoo.hpp"
#include "nn/pool.hpp"
#include "obs/span.hpp"
#include "perf/codegen.hpp"
#include "perf/perf_sim.hpp"
#include "sc/gates.hpp"
#include "sc/kernels/kernels.hpp"
#include "sc/rng.hpp"
#include "sc/sng.hpp"
#include "sim/evaluate.hpp"
#include "sim/sc_mac.hpp"
#include "sim/stream_bank.hpp"
#include "sim/stream_plan.hpp"
#include "train/models.hpp"

using namespace acoustic;

namespace {

void BM_SngGenerate(benchmark::State& state) {
  sc::Sng sng(8, 1);
  const auto length = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sng.generate(0.37, length));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_SngGenerate)->Arg(128)->Arg(1024)->Arg(8192);

void BM_AndMultiply(benchmark::State& state) {
  sc::Sng sng(16, 3);
  const auto length = static_cast<std::size_t>(state.range(0));
  const sc::BitStream a = sng.generate(0.5, length);
  const sc::BitStream b = sng.generate(0.3, length);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sc::and_multiply(a, b));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_AndMultiply)->Arg(1024)->Arg(65536);

void BM_OrAccumulateWide(benchmark::State& state) {
  sc::Sng sng(16, 5);
  const int width = static_cast<int>(state.range(0));
  std::vector<sc::BitStream> streams;
  for (int i = 0; i < width; ++i) {
    streams.push_back(sng.generate(0.01, 1024));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sc::or_accumulate(std::span<const sc::BitStream>(streams)));
  }
  state.SetItemsProcessed(state.iterations() * width * 1024);
}
BENCHMARK(BM_OrAccumulateWide)->Arg(96)->Arg(2304);

void BM_SplitUnipolarMac(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  std::vector<double> acts(static_cast<std::size_t>(width), 0.4);
  std::vector<double> wgts(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    wgts[static_cast<std::size_t>(i)] = (i % 2 ? 0.2 : -0.2);
  }
  sim::ScConfig cfg;
  cfg.stream_length = 256;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::split_unipolar_mac(acts, wgts, cfg));
  }
}
BENCHMARK(BM_SplitUnipolarMac)->Arg(96);

void BM_StreamBankFill(benchmark::State& state) {
  // The word-parallel SNG kernel: 64 comparator outputs per word
  // iteration with the per-lane wiring hoisted out of the bit loop.
  const auto length = static_cast<std::size_t>(state.range(0));
  sim::StreamBank bank(8, 0xBEEF, length, true);
  std::vector<std::uint64_t> words((length + 63) / 64);
  std::uint32_t lane = 0;
  for (auto _ : state) {
    bank.fill(128, lane++, 0, length, words);
    benchmark::DoNotOptimize(words.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(length));
}
BENCHMARK(BM_StreamBankFill)->Arg(128)->Arg(1024)->Arg(8192);

// --- SIMD kernel layer: scalar reference vs the active dispatch level.
// Run with --benchmark_filter=BM_Kernel --benchmark_format=json to
// regenerate bench/BENCH_kernels.json.

void BM_KernelComparePack(benchmark::State& state,
                          sc::kernels::Level level) {
  const sc::kernels::KernelTable& kt = sc::kernels::table_for(level);
  const auto count = static_cast<std::size_t>(state.range(0));
  sc::kernels::CompareWiring wiring;
  wiring.mask = 0xFFu;
  wiring.width = 8;
  wiring.pre_xor = 0x5Au;
  wiring.post_xor = 0xC3u;
  wiring.rot = 3;
  sc::XorShift32 rng(42);
  std::vector<std::uint32_t> lfsr_states(count);
  for (auto& s : lfsr_states) {
    s = rng.next() & wiring.mask;
  }
  std::vector<std::uint64_t> out((count + 63) / 64, 0);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), std::uint64_t{0});
    kt.compare_pack(wiring, lfsr_states.data(), count, 128, out.data(), 0);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(count));
}
BENCHMARK_CAPTURE(BM_KernelComparePack, scalar, sc::kernels::Level::kScalar)
    ->Arg(256)
    ->Arg(8192);
BENCHMARK_CAPTURE(BM_KernelComparePack, active, sc::kernels::active_level())
    ->Arg(256)
    ->Arg(8192);

void BM_KernelAndOrPopcount(benchmark::State& state,
                            sc::kernels::Level level) {
  const sc::kernels::KernelTable& kt = sc::kernels::table_for(level);
  const auto n = static_cast<std::size_t>(state.range(0));
  sc::XorShift32 rng(7);
  std::vector<std::uint64_t> a(n), b(n), acc(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = (static_cast<std::uint64_t>(rng.next()) << 32) | rng.next();
    b[i] = (static_cast<std::uint64_t>(rng.next()) << 32) | rng.next();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kt.and_or_popcount(acc.data(), a.data(), b.data(), n));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * 64));
}
BENCHMARK_CAPTURE(BM_KernelAndOrPopcount, scalar, sc::kernels::Level::kScalar)
    ->Arg(4)
    ->Arg(64);
BENCHMARK_CAPTURE(BM_KernelAndOrPopcount, active,
                  sc::kernels::active_level())
    ->Arg(4)
    ->Arg(64);

void BM_KernelPopcountWords(benchmark::State& state,
                            sc::kernels::Level level) {
  const sc::kernels::KernelTable& kt = sc::kernels::table_for(level);
  const auto n = static_cast<std::size_t>(state.range(0));
  sc::XorShift32 rng(11);
  std::vector<std::uint64_t> words(n);
  for (auto& w : words) {
    w = (static_cast<std::uint64_t>(rng.next()) << 32) | rng.next();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(kt.popcount_words(words.data(), n));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * 64));
}
BENCHMARK_CAPTURE(BM_KernelPopcountWords, scalar, sc::kernels::Level::kScalar)
    ->Arg(16)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_KernelPopcountWords, active,
                  sc::kernels::active_level())
    ->Arg(16)
    ->Arg(1024);

void BM_StreamPlanBuild(benchmark::State& state) {
  // Packed layer-plan build for a conv2-sized weight lane space (one
  // full-window kernel sweep per lane, sliced into pooling-window slots).
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const sim::SegmentSchedule sched{64, 4, 16};
  sim::StreamBank bank(8, 0xBEEF, 2 * sched.phase, true);
  std::vector<std::uint32_t> levels(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    levels[i] = static_cast<std::uint32_t>(1 + (i % 255));
  }
  for (auto _ : state) {
    sim::LayerStreamPlan plan(bank, sched, lanes, 0);
    sim::StreamPlanCounters counters;
    plan.build(levels, counters, nullptr);
    benchmark::DoNotOptimize(plan.enabled());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(lanes * 2 * sched.phase));
}
BENCHMARK(BM_StreamPlanBuild)->Arg(384)->Arg(2400);

void sc_forward_bench(benchmark::State& state, sim::ExecMode exec) {
  nn::Network net = train::build_lenet_small(nn::AccumMode::kOrApprox, 16);
  sim::ScConfig cfg;
  cfg.stream_length = static_cast<std::size_t>(state.range(0));
  cfg.exec = exec;
  sim::ScNetwork executor(net, cfg);
  nn::Tensor x(nn::Shape{16, 16, 1});
  x.fill(0.5f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.forward(x));
  }
}

void BM_ScNetworkForward(benchmark::State& state) {
  sc_forward_bench(state, sim::ExecMode::kPlanned);
}
BENCHMARK(BM_ScNetworkForward)->Arg(64)->Arg(256);

void BM_ScNetworkForwardScalar(benchmark::State& state) {
  sc_forward_bench(state, sim::ExecMode::kScalar);
}
BENCHMARK(BM_ScNetworkForwardScalar)->Arg(64)->Arg(256);

void sc_conv_stage_bench(benchmark::State& state, sim::ExecMode exec) {
  // One conv + fused avg-pool stage, the hot shape of the executor.
  nn::Network net;
  auto& conv = net.add<nn::Conv2D>(nn::ConvSpec{
      .in_channels = 6, .out_channels = 16, .kernel = 5,
      .mode = nn::AccumMode::kOrApprox});
  net.add<nn::ReLU>();
  net.add<nn::AvgPool2D>(2);
  conv.initialize(61);
  sim::ScConfig cfg;
  cfg.stream_length = 128;
  cfg.exec = exec;
  sim::ScNetwork executor(net, cfg);
  nn::Tensor x(nn::Shape{8, 8, 6});
  x.fill(0.4f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(executor.forward(x));
  }
}

void BM_ScConvStagePlanned(benchmark::State& state) {
  sc_conv_stage_bench(state, sim::ExecMode::kPlanned);
}
BENCHMARK(BM_ScConvStagePlanned);

void BM_ScConvStageScalar(benchmark::State& state) {
  sc_conv_stage_bench(state, sim::ExecMode::kScalar);
}
BENCHMARK(BM_ScConvStageScalar);

// --- profiling span overhead: the hooks stay compiled into the hot
// paths permanently, so the disabled path (null profiler) must cost a
// few pointer writes — no clock reads, no string work, no allocation.
// BM_SpanDisabled tracks that budget; BM_SpanEnabled shows what turning
// profiling on costs (two clock reads + one mutex-guarded record).

void BM_SpanDisabled(benchmark::State& state) {
  for (auto _ : state) {
    obs::Span span(nullptr, std::string(), std::string());
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::Profiler profiler;
  for (auto _ : state) {
    obs::Span span(&profiler, "bench", "layer");
    benchmark::DoNotOptimize(&span);
  }
  benchmark::DoNotOptimize(profiler.size());
}
BENCHMARK(BM_SpanEnabled);

void BM_PerfSimAlexNet(benchmark::State& state) {
  const nn::NetworkDesc net = nn::alexnet();
  const perf::ArchConfig arch = perf::lp();
  const perf::CodegenResult compiled = perf::generate_program(net, arch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perf::simulate(compiled.program, arch));
  }
}
BENCHMARK(BM_PerfSimAlexNet);

void BM_CodegenVgg(benchmark::State& state) {
  const nn::NetworkDesc net = nn::vgg16();
  const perf::ArchConfig arch = perf::lp();
  for (auto _ : state) {
    benchmark::DoNotOptimize(perf::generate_program(net, arch));
  }
}
BENCHMARK(BM_CodegenVgg);

}  // namespace

// Ablations of ACOUSTIC's stochastic-computing design choices (the
// DESIGN.md ablation index):
//
//  A. Representation + accumulation: ACOUSTIC's split-unipolar OR datapath
//     vs the conventional bipolar-MUX datapath of prior SC accelerators,
//     each with its native training, across stream lengths. This is the
//     end-to-end version of the paper's II-A/II-B arguments.
//  B. SNG comparator width: how much RNG resolution the datapath needs.
//  C. Shared-RNG lane decorrelation: naive LFSR sharing vs the scrambled
//     + phase-tapped banks (what makes OR accumulation workable at all
//     with one RNG per bank).
#include <cstdio>

#include "core/report.hpp"
#include "sim/backend.hpp"
#include "sim/batch_evaluator.hpp"
#include "train/models.hpp"
#include "train/trainer.hpp"

using namespace acoustic;

namespace {

// All bit-level runs go through the shared backend/evaluator layer: one
// thread pool, per-thread backend clones, bit-identical for any thread
// count.
sim::BatchEvaluator& evaluator() {
  static sim::BatchEvaluator instance(0);
  return instance;
}

float sc_accuracy(nn::Network& net, const sim::ScConfig& cfg,
                  const train::Dataset& data) {
  const auto backend = sim::make_sc_backend(net, cfg);
  return evaluator().evaluate(*backend, data).accuracy;
}

float bipolar_accuracy(nn::Network& net, const train::Dataset& data,
                       std::size_t stream_length) {
  sim::BipolarConfig cfg;
  cfg.stream_length = stream_length;
  const auto backend = sim::make_bipolar_backend(net, cfg);
  return evaluator().evaluate(*backend, data).accuracy;
}

}  // namespace

int main() {
  std::printf("=== Ablations: SC design choices ===\n\n");

  const train::Dataset tr = train::make_synth_objects(1000, 3, 16);
  const train::Dataset te = train::make_synth_objects(200, 4, 16);

  std::printf("training both representations' native networks...\n");
  train::TrainConfig or_cfg;
  or_cfg.epochs = 8;
  nn::Network or_net = train::build_cifar_small(nn::AccumMode::kOrApprox, 16);
  (void)train::fit(or_net, tr, or_cfg);

  train::TrainConfig sum_cfg;
  sum_cfg.epochs = 16;
  sum_cfg.learning_rate = 0.01f;
  sum_cfg.lr_decay = 0.95f;
  nn::Network sum_net = train::build_cifar_small(nn::AccumMode::kSum, 16);
  (void)train::fit(sum_net, tr, sum_cfg);

  std::printf("float references: OR-approx net %.1f%%, sum net %.1f%%\n\n",
              100.0f * train::evaluate(or_net, te),
              100.0f * train::evaluate(sum_net, te));

  // --- A. representation + accumulation ------------------------------
  core::Table rep({"stream length", "split-unipolar OR [%]",
                   "bipolar MUX [%]"});
  for (std::size_t len : {64u, 128u, 256u, 512u}) {
    sim::ScConfig sc;
    sc.stream_length = len;
    rep.add_row({std::to_string(len),
                 core::format_number(
                     100.0 * sc_accuracy(or_net, sc, te), 4),
                 core::format_number(
                     100.0 * bipolar_accuracy(sum_net, te, len), 4)});
  }
  std::printf("A. representation/accumulation (each with native "
              "training):\n%s\n", rep.to_string().c_str());
  std::printf("Shape: the fully-stochastic bipolar-MUX datapath collapses "
              "at these\nlengths — the MUX multiplies stream noise by the "
              "accumulation fan-in\n(II-B) and bipolar encoding wastes "
              "half the resolution (II-A). This is\nprecisely why prior "
              "SC accelerators abandoned stochastic accumulation\n(early "
              "binary conversion / parallel counters) and why ACOUSTIC's\n"
              "split-unipolar OR datapath is the enabling contribution.\n\n");

  // --- B. SNG comparator width ----------------------------------------
  core::Table width({"SNG width [bits]", "accuracy [%] (256 streams)"});
  for (unsigned w : {4u, 6u, 8u, 10u, 12u}) {
    sim::ScConfig sc;
    sc.stream_length = 256;
    sc.sng_width = w;
    width.add_row({std::to_string(w),
                   core::format_number(
                       100.0 * sc_accuracy(or_net, sc, te), 4)});
  }
  std::printf("B. SNG comparator width:\n%s\n", width.to_string().c_str());
  std::printf("Shape: ~8 bits suffices (the architecture's choice); "
              "narrower comparators\nquantize weights/activations too "
              "coarsely.\n\n");

  // --- C. lane decorrelation ------------------------------------------
  core::Table corr({"shared-RNG lanes", "accuracy [%] (256 streams)"});
  for (bool decorrelate : {true, false}) {
    sim::ScConfig sc;
    sc.stream_length = 256;
    sc.decorrelate_lanes = decorrelate;
    corr.add_row({decorrelate ? "scrambled + phase taps" : "naive sharing",
                  core::format_number(
                      100.0 * sc_accuracy(or_net, sc, te), 4)});
  }
  std::printf("C. shared-RNG lane decorrelation:\n%s\n",
              corr.to_string().c_str());
  std::printf("Shape: naive sharing makes every lane's stream identical "
              "in time, so AND\nproducts collapse toward min() and OR "
              "toward max() — accuracy craters.\nThe scrambler+phase "
              "wiring restores independence at negligible cost\n(III-A "
              "RNG sharing done right).\n");
  return 0;
}

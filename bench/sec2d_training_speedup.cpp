// Section II-D claims: the 1 - e^{-s} OR approximation (Eq. 1)
//  1. has < 5% approximation error against exact OR arithmetic;
//  2. recovers ~10x of the ~15x training slowdown exact OR-addition
//     causes.
//
// The slowdown mechanism: exact OR accumulation cannot use a fused
// multiply-accumulate (vectorized dot product). The forward pass is a
// *sequential product scan* prod *= (1 - a_i w_i), and the backward pass
// needs leave-one-out products (prefix x suffix scans). The approximation
// restores the plain dot product and adds one activation evaluation.
// We benchmark the three kernels at CNN accumulation width, then time
// whole training epochs for the end-to-end view.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/report.hpp"
#include "sc/gates.hpp"
#include "sc/rng.hpp"
#include "train/models.hpp"
#include "train/stream_tune.hpp"
#include "train/trainer.hpp"

using namespace acoustic;

namespace {

using Clock = std::chrono::steady_clock;

double run_timed(int repeats, const std::function<void()>& body) {
  const auto start = Clock::now();
  for (int r = 0; r < repeats; ++r) {
    body();
  }
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Plain dot-product forward + backward (what kSum training runs).
void dot_kernel(const std::vector<float>& a, const std::vector<float>& w,
                std::vector<float>& ga, std::vector<float>& gw,
                float& out_sink) {
  float acc = 0.0f;
  const std::size_t k = a.size();
  for (std::size_t i = 0; i < k; ++i) {
    acc += a[i] * w[i];
  }
  // Backward of a dot product: g * w / g * a (g = 1 here).
  for (std::size_t i = 0; i < k; ++i) {
    ga[i] += w[i];
    gw[i] += a[i];
  }
  out_sink += acc;
}

/// Eq. (1) forward + backward: dot product + one exp, scaled backward.
void approx_kernel(const std::vector<float>& a, const std::vector<float>& w,
                   std::vector<float>& ga, std::vector<float>& gw,
                   float& out_sink) {
  float acc = 0.0f;
  const std::size_t k = a.size();
  for (std::size_t i = 0; i < k; ++i) {
    acc += a[i] * w[i];
  }
  const float d = std::exp(-acc);  // dOut/ds for out = 1 - e^{-s}
  for (std::size_t i = 0; i < k; ++i) {
    ga[i] += d * w[i];
    gw[i] += d * a[i];
  }
  out_sink += 1.0f - d;
}

/// Exact OR forward + backward: sequential product scan, then prefix and
/// suffix product arrays for the leave-one-out gradients.
void exact_or_kernel(const std::vector<float>& a, const std::vector<float>& w,
                     std::vector<float>& ga, std::vector<float>& gw,
                     std::vector<float>& prefix, std::vector<float>& suffix,
                     float& out_sink) {
  const std::size_t k = a.size();
  // Forward: prod(1 - a_i w_i) — a loop-carried dependency, unvectorizable.
  prefix[0] = 1.0f;
  for (std::size_t i = 0; i < k; ++i) {
    prefix[i + 1] = prefix[i] * (1.0f - a[i] * w[i]);
  }
  suffix[k] = 1.0f;
  for (std::size_t i = k; i > 0; --i) {
    suffix[i - 1] = suffix[i] * (1.0f - a[i - 1] * w[i - 1]);
  }
  // dOut/dterm_i = prod_{j != i} (1 - t_j) = prefix[i] * suffix[i+1].
  for (std::size_t i = 0; i < k; ++i) {
    const float loo = prefix[i] * suffix[i + 1];
    ga[i] += loo * w[i];
    gw[i] += loo * a[i];
  }
  out_sink += 1.0f - prefix[k];
}

double seconds_for_epochs(nn::AccumMode mode, const train::Dataset& data,
                          int epochs) {
  nn::Network net = train::build_cifar_small(mode, 16);
  train::TrainConfig cfg;
  cfg.epochs = epochs;
  const auto start = Clock::now();
  (void)train::fit(net, data, cfg);
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  std::printf("=== Section II-D: OR-approximation quality & training "
              "speed ===\n\n");

  // --- 1. approximation error of Eq. (1) over training-range sums ---
  core::Table err({"inputs n", "sum s", "exact OR", "1 - e^-s",
                   "rel. error [%]"});
  for (int n : {9, 64, 576, 2304}) {
    for (double s : {0.1, 0.5, 1.0, 2.0}) {
      std::vector<double> values(static_cast<std::size_t>(n),
                                 s / static_cast<double>(n));
      const double exact = sc::or_expected(values);
      const double approx = sc::or_approximation(s);
      err.add_row({std::to_string(n), core::format_number(s, 2),
                   core::format_number(exact, 4),
                   core::format_number(approx, 4),
                   core::format_number(100.0 * std::fabs(approx - exact) /
                                           exact, 3)});
    }
  }
  std::printf("%s\n", err.to_string().c_str());
  std::printf("Paper: approximation error < 5%% as extracted from actual "
              "training runs.\n\n");

  // --- 2. accumulation-kernel timing at CNN width ---
  constexpr std::size_t kWidth = 2304;  // 3x3x256
  constexpr int kOutputs = 2000;
  std::vector<float> a(kWidth);
  std::vector<float> w(kWidth);
  sc::XorShift32 rng(7);
  for (std::size_t i = 0; i < kWidth; ++i) {
    a[i] = static_cast<float>(rng.next_double());
    w[i] = static_cast<float>(rng.next_double()) * 0.02f;
  }
  std::vector<float> ga(kWidth);
  std::vector<float> gw(kWidth);
  std::vector<float> prefix(kWidth + 1);
  std::vector<float> suffix(kWidth + 1);
  float sink = 0.0f;

  const double t_dot = run_timed(kOutputs, [&] {
    dot_kernel(a, w, ga, gw, sink);
  });
  const double t_approx = run_timed(kOutputs, [&] {
    approx_kernel(a, w, ga, gw, sink);
  });
  const double t_exact = run_timed(kOutputs, [&] {
    exact_or_kernel(a, w, ga, gw, prefix, suffix, sink);
  });

  core::Table kernels({"accumulation kernel (fwd+bwd)", "time [ms]",
                       "slowdown vs dot"});
  kernels.add_row({"dot product (conventional)",
                   core::format_number(t_dot * 1e3, 4), "1.0x"});
  kernels.add_row({"dot + Eq.(1) activation (ACOUSTIC)",
                   core::format_number(t_approx * 1e3, 4),
                   core::format_number(t_approx / t_dot, 3) + "x"});
  kernels.add_row({"exact OR (product scans)",
                   core::format_number(t_exact * 1e3, 4),
                   core::format_number(t_exact / t_dot, 3) + "x"});
  std::printf("%s", kernels.to_string().c_str());
  std::printf("  (sink %.3f ignored)\n\n", static_cast<double>(sink) * 0.0);
  std::printf("Eq.(1) speedup over exact OR at the kernel level: %.1fx\n\n",
              t_exact / t_approx);

  // --- 3. end-to-end epoch timing with this repository's trainer ---
  const train::Dataset data = train::make_synth_objects(400, 77, 16);
  constexpr int kEpochs = 2;
  const double e_sum = seconds_for_epochs(nn::AccumMode::kSum, data, kEpochs);
  const double e_approx =
      seconds_for_epochs(nn::AccumMode::kOrApprox, data, kEpochs);
  const double e_exact =
      seconds_for_epochs(nn::AccumMode::kOrExact, data, kEpochs);
  // Stream-based training — the baseline the paper's "almost 10X" speedup
  // is measured against: the forward pass runs through the bit-level
  // simulator (train::fit_stream_aware).
  const double e_stream = [&] {
    nn::Network net = train::build_cifar_small(nn::AccumMode::kOrApprox, 16);
    train::TrainConfig cfg;
    cfg.epochs = kEpochs;
    sim::ScConfig sc;
    sc.stream_length = 128;
    const auto start = Clock::now();
    (void)train::fit_stream_aware(net, data, cfg, sc);
    return std::chrono::duration<double>(Clock::now() - start).count();
  }();

  core::Table epochs({"training arithmetic", "2 epochs [s]",
                      "vs plain sum"});
  epochs.add_row({"plain sum", core::format_number(e_sum, 3), "1.0x"});
  epochs.add_row({"OR-approx (Eq. 1)", core::format_number(e_approx, 3),
                  core::format_number(e_approx / e_sum, 3) + "x"});
  epochs.add_row({"exact OR", core::format_number(e_exact, 3),
                  core::format_number(e_exact / e_sum, 3) + "x"});
  epochs.add_row({"stream-based (bit-level fwd)",
                  core::format_number(e_stream, 3),
                  core::format_number(e_stream / e_sum, 3) + "x"});
  std::printf("%s\n", epochs.to_string().c_str());
  std::printf("Eq.(1) speedup over stream-based training: %.1fx "
              "(paper: ~10x)\n\n", e_stream / e_approx);
  std::printf(
      "Paper shape: exact OR-addition costs ~15x in a vectorized training\n"
      "framework (the kernel table shows the mechanism: product scans\n"
      "defeat FMA vectorization); Eq. (1) recovers 10x+ of it. This\n"
      "repository's scalar trainer shows the same ordering with a smaller\n"
      "end-to-end gap because its dot products are not BLAS-vectorized.\n");
  return 0;
}

// Table III reproduction: ACOUSTIC LP vs Eyeriss (168/1024 PEs) and SCOPE.
//
// ACOUSTIC numbers come from the full pipeline: network descriptor ->
// ISA program (codegen) -> dispatcher performance simulation -> component
// energy model. Eyeriss numbers come from the calibrated analytical model
// (stand-in for the TETRIS runs the paper used); SCOPE rows are the
// published 28nm-scaled points, exactly as the paper reproduced them.
#include <cstdio>
#include <vector>

#include "baselines/eyeriss.hpp"
#include "baselines/scope.hpp"
#include "core/accelerator.hpp"
#include "core/report.hpp"

using namespace acoustic;

namespace {

std::string perf_cell(double value, bool available) {
  return available ? core::format_number(value, 4) : "N/A";
}

}  // namespace

int main() {
  std::printf("=== Table III: ACOUSTIC LP vs fixed-point and stochastic "
              "accelerators ===\n\n");

  const auto base = baselines::eyeriss_base();
  const auto big = baselines::eyeriss_1k();
  const auto scope_cfg = baselines::scope_config();
  const core::Accelerator lp(perf::lp());

  core::Table envelope({"", "Eyeriss Base", "Eyeriss 1k PEs", "SCOPE",
                        "ACOUSTIC LP"});
  envelope.add_row({"Area [mm2]", core::format_number(base.area_mm2, 3),
                    core::format_number(big.area_mm2, 3),
                    core::format_number(scope_cfg.area_mm2, 4),
                    core::format_number(
                        energy::total_area_mm2(perf::lp()), 3)});
  envelope.add_row({"Power [W]", core::format_number(base.power_w, 3),
                    core::format_number(big.power_w, 3), "N/A",
                    [] {
                      const auto p = energy::peak_power_w(perf::lp());
                      double total = 0.0;
                      for (double w : p) total += w;
                      return core::format_number(total, 3);
                    }()});
  envelope.add_row({"Clock [MHz]", "200", "200", "125", "200"});
  std::printf("%s\n", envelope.to_string().c_str());

  core::Table table({"Network", "Metric", "Eyeriss Base", "Eyeriss 1k PEs",
                     "SCOPE", "ACOUSTIC LP"});
  for (const nn::NetworkDesc& net : nn::table3_workloads()) {
    const auto eb = baselines::eyeriss_run(base, net);
    const auto e1k = baselines::eyeriss_run(big, net);
    const auto sc = baselines::scope_run(net);
    const core::InferenceCost cost = lp.run(net);
    table.add_row({net.name, "Fr/J",
                   perf_cell(eb.frames_per_j, eb.available),
                   perf_cell(e1k.frames_per_j, e1k.available),
                   perf_cell(sc.frames_per_j, sc.available),
                   core::format_number(cost.frames_per_j, 4)});
    table.add_row({"", "Fr/s",
                   perf_cell(eb.frames_per_s, eb.available),
                   perf_cell(e1k.frames_per_s, e1k.available),
                   perf_cell(sc.frames_per_s, sc.available),
                   core::format_number(cost.frames_per_s, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Headline ratios the paper quotes in the abstract / conclusion.
  const auto vgg_cost = lp.run(nn::vgg16());
  const auto vgg_1k = baselines::eyeriss_run(big, nn::vgg16());
  const auto alex_cost = lp.run(nn::alexnet());
  const auto alex_scope = baselines::scope_run(nn::alexnet());
  const auto alex_base = baselines::eyeriss_run(base, nn::alexnet());
  std::printf("headline ratios (paper / measured):\n");
  std::printf("  energy efficiency vs Eyeriss-1k on VGG-16: paper 38.7x, "
              "measured %.1fx\n",
              vgg_cost.frames_per_j / vgg_1k.frames_per_j);
  std::printf("  energy efficiency vs SCOPE on AlexNet:      paper 19.0x, "
              "measured %.1fx\n",
              alex_cost.frames_per_j / alex_scope.frames_per_j);
  std::printf("  throughput vs Eyeriss base on VGG-16:       paper 51.8x, "
              "measured %.1fx\n",
              vgg_cost.frames_per_s /
                  baselines::eyeriss_run(base, nn::vgg16()).frames_per_s);
  std::printf("  throughput vs Eyeriss base on AlexNet:      paper  5.8x, "
              "measured %.1fx\n",
              alex_cost.frames_per_s / alex_base.frames_per_s);
  std::printf("\nAlexNet latency/energy (batch 1): %.2f ms / %.3f mJ "
              "on-chip (+%.2f mJ DRAM)\n", alex_cost.latency_s * 1e3,
              alex_cost.on_chip_energy_j * 1e3,
              alex_cost.dram_energy_j * 1e3);
  std::printf("(paper abstract: 4 ms / 0.4 mJ per AlexNet image)\n");
  return 0;
}

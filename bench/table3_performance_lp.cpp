// Table III reproduction: ACOUSTIC LP vs Eyeriss (168/1024 PEs) and SCOPE.
//
// ACOUSTIC numbers come from the full pipeline: network descriptor ->
// ISA program (codegen) -> dispatcher performance simulation -> component
// energy model. Eyeriss numbers come from the calibrated analytical model
// (stand-in for the TETRIS runs the paper used); SCOPE rows are the
// published 28nm-scaled points, exactly as the paper reproduced them.
//
//   table3_performance_lp [--json PATH]
// --json writes one machine-readable record per workload (the ACOUSTIC
// InferenceCost plus each baseline's throughput/efficiency point).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/eyeriss.hpp"
#include "baselines/scope.hpp"
#include "core/accelerator.hpp"
#include "core/report.hpp"

using namespace acoustic;

namespace {

std::string perf_cell(double value, bool available) {
  return available ? core::format_number(value, 4) : "N/A";
}

/// One baseline point as a compact JSON object (null when the baseline
/// does not publish this workload).
std::string baseline_json(double frames_per_j, double frames_per_s,
                          bool available) {
  if (!available) {
    return "null";
  }
  std::string out = "{\"frames_per_j\": ";
  out += core::json_number(frames_per_j);
  out += ", \"frames_per_s\": ";
  out += core::json_number(frames_per_s);
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: table3_performance_lp [--json PATH]\n");
      return 2;
    }
  }

  std::printf("=== Table III: ACOUSTIC LP vs fixed-point and stochastic "
              "accelerators ===\n\n");

  const auto base = baselines::eyeriss_base();
  const auto big = baselines::eyeriss_1k();
  const auto scope_cfg = baselines::scope_config();
  const core::Accelerator lp(perf::lp());

  core::Table envelope({"", "Eyeriss Base", "Eyeriss 1k PEs", "SCOPE",
                        "ACOUSTIC LP"});
  envelope.add_row({"Area [mm2]", core::format_number(base.area_mm2, 3),
                    core::format_number(big.area_mm2, 3),
                    core::format_number(scope_cfg.area_mm2, 4),
                    core::format_number(
                        energy::total_area_mm2(perf::lp()), 3)});
  envelope.add_row({"Power [W]", core::format_number(base.power_w, 3),
                    core::format_number(big.power_w, 3), "N/A",
                    [] {
                      const auto p = energy::peak_power_w(perf::lp());
                      double total = 0.0;
                      for (double w : p) total += w;
                      return core::format_number(total, 3);
                    }()});
  envelope.add_row({"Clock [MHz]", "200", "200", "125", "200"});
  std::printf("%s\n", envelope.to_string().c_str());

  core::Table table({"Network", "Metric", "Eyeriss Base", "Eyeriss 1k PEs",
                     "SCOPE", "ACOUSTIC LP"});
  std::vector<std::string> json_records;
  for (const nn::NetworkDesc& net : nn::table3_workloads()) {
    const auto eb = baselines::eyeriss_run(base, net);
    const auto e1k = baselines::eyeriss_run(big, net);
    const auto sc = baselines::scope_run(net);
    const core::InferenceCost cost = lp.run(net);
    if (!json_path.empty()) {
      std::string rec = "    {\"network\": \"";
      rec += core::json_escape(net.name);
      rec += "\",\n     \"acoustic_lp\": ";
      rec += core::to_json(cost);
      rec += ",\n     \"eyeriss_base\": ";
      rec += baseline_json(eb.frames_per_j, eb.frames_per_s, eb.available);
      rec += ",\n     \"eyeriss_1k\": ";
      rec += baseline_json(e1k.frames_per_j, e1k.frames_per_s,
                           e1k.available);
      rec += ",\n     \"scope\": ";
      rec += baseline_json(sc.frames_per_j, sc.frames_per_s, sc.available);
      rec += "}";
      json_records.push_back(std::move(rec));
    }
    table.add_row({net.name, "Fr/J",
                   perf_cell(eb.frames_per_j, eb.available),
                   perf_cell(e1k.frames_per_j, e1k.available),
                   perf_cell(sc.frames_per_j, sc.available),
                   core::format_number(cost.frames_per_j, 4)});
    table.add_row({"", "Fr/s",
                   perf_cell(eb.frames_per_s, eb.available),
                   perf_cell(e1k.frames_per_s, e1k.available),
                   perf_cell(sc.frames_per_s, sc.available),
                   core::format_number(cost.frames_per_s, 4)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Headline ratios the paper quotes in the abstract / conclusion.
  const auto vgg_cost = lp.run(nn::vgg16());
  const auto vgg_1k = baselines::eyeriss_run(big, nn::vgg16());
  const auto alex_cost = lp.run(nn::alexnet());
  const auto alex_scope = baselines::scope_run(nn::alexnet());
  const auto alex_base = baselines::eyeriss_run(base, nn::alexnet());
  std::printf("headline ratios (paper / measured):\n");
  std::printf("  energy efficiency vs Eyeriss-1k on VGG-16: paper 38.7x, "
              "measured %.1fx\n",
              vgg_cost.frames_per_j / vgg_1k.frames_per_j);
  std::printf("  energy efficiency vs SCOPE on AlexNet:      paper 19.0x, "
              "measured %.1fx\n",
              alex_cost.frames_per_j / alex_scope.frames_per_j);
  std::printf("  throughput vs Eyeriss base on VGG-16:       paper 51.8x, "
              "measured %.1fx\n",
              vgg_cost.frames_per_s /
                  baselines::eyeriss_run(base, nn::vgg16()).frames_per_s);
  std::printf("  throughput vs Eyeriss base on AlexNet:      paper  5.8x, "
              "measured %.1fx\n",
              alex_cost.frames_per_s / alex_base.frames_per_s);
  std::printf("\nAlexNet latency/energy (batch 1): %.2f ms / %.3f mJ "
              "on-chip (+%.2f mJ DRAM)\n", alex_cost.latency_s * 1e3,
              alex_cost.on_chip_energy_j * 1e3,
              alex_cost.dram_energy_j * 1e3);
  std::printf("(paper abstract: 4 ms / 0.4 mJ per AlexNet image)\n");

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    out << "{\n  \"bench\": \"table3_performance_lp\",\n"
           "  \"arch\": \"ACOUSTIC-LP\",\n  \"workloads\": [\n";
    for (std::size_t i = 0; i < json_records.size(); ++i) {
      out << json_records[i] << (i + 1 < json_records.size() ? ",\n" : "\n");
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %zu workload records to %s\n", json_records.size(),
                json_path.c_str());
  }
  return 0;
}

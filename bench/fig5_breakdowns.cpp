// Figure 5 reproduction: area and power breakdowns for the LP and ULP
// configurations, computed from the component models (not hard-coded
// percentages — the shares emerge from the same constants the energy model
// prices inference with).
#include <cstdio>

#include "energy/breakdown.hpp"

using namespace acoustic;

int main() {
  std::printf("=== Figure 5: area & power breakdowns ===\n\n");
  const auto lp = perf::lp();
  const auto ulp = perf::ulp();

  std::printf("(a) %s\n", energy::format_breakdown(
                              energy::area_breakdown(lp)).c_str());
  std::printf("(b) %s\n", energy::format_breakdown(
                              energy::area_breakdown(ulp)).c_str());
  std::printf("(c) %s\n", energy::format_breakdown(
                              energy::power_breakdown(lp)).c_str());
  std::printf("(d) %s\n", energy::format_breakdown(
                              energy::power_breakdown(ulp)).c_str());

  std::printf("Paper shape checks (IV-C):\n");
  std::printf(" * LP: MAC arrays are the largest area AND power "
              "contributor.\n");
  std::printf(" * LP: weight buffers are a major area term but consume "
              "little power\n   (infrequent switching).\n");
  std::printf(" * ULP: activation + weight memories dominate both area "
              "and power.\n");
  std::printf(" * Published envelopes: LP 12 mm^2 / 0.35 W, ULP 0.18 mm^2 "
              "/ 3 mW.\n");
  return 0;
}

// Section II-C claims: computation-skipping stochastic average pooling
//  1. cuts conv-layer computation (and hence latency/energy) by the pooling
//     window area: 4x for 2x2, 9x for 3x3;
//  2. costs almost nothing in hardware (counter grows 2.7-8.7%, < 1% of
//     accelerator area);
//  3. is statistically equivalent to MUX average pooling (and avg vs max
//     pooling costs < 0.3% accuracy).
#include <cstdio>

#include "core/report.hpp"
#include "energy/energy_model.hpp"
#include "nn/pool.hpp"
#include "sim/backend.hpp"
#include "sim/batch_evaluator.hpp"
#include "train/models.hpp"
#include "train/trainer.hpp"

using namespace acoustic;

int main() {
  std::printf("=== Section II-C: computation-skipping average pooling "
              "===\n\n");

  // --- 1. latency / energy reduction on a conv layer ---
  core::Table reduction({"pooling window", "MAC cycles", "conv latency",
                         "compute-energy ratio", "paper claim"});
  nn::LayerDesc layer;
  layer.kind = nn::OpKind::kConv2D;
  layer.label = "conv";
  layer.in_h = 36;
  layer.in_w = 36;
  layer.in_c = 96;
  layer.kernel = 3;
  layer.padding = 1;
  layer.out_c = 128;

  const perf::ArchConfig arch = perf::lp();
  const auto k = energy::tsmc28();
  nn::LayerDesc no_pool = layer;
  no_pool.pool = 0;
  const perf::LayerMapping base = perf::map_layer(no_pool, arch);
  const double base_mac_energy =
      static_cast<double>(base.product_bits) * k.mac_product_bit_j;
  for (int pool : {0, 2, 3}) {
    nn::LayerDesc l = layer;
    l.pool = pool;
    const perf::LayerMapping m = perf::map_layer(l, arch);
    const double mac_energy =
        static_cast<double>(m.product_bits) * k.mac_product_bit_j;
    reduction.add_row(
        {pool == 0 ? "none" : (std::to_string(pool) + "x" +
                               std::to_string(pool)),
         std::to_string(m.mac_cycles),
         core::format_number(static_cast<double>(m.mac_cycles) /
                                 arch.clock_hz() * 1e6, 4) + " us",
         core::format_number(base_mac_energy / mac_energy, 3) + "x",
         pool == 0 ? "1x" : (pool == 2 ? "4x" : "9x")});
  }
  std::printf("%s\n", reduction.to_string().c_str());

  // --- 2. counter area overhead ---
  // Pooling support adds a small (2x-3x) parallel counter in front of each
  // activation counter; the paper puts the counter growth at 2.7-8.7% and
  // the accelerator-level cost below 1%.
  const double counter_area = k.counter_um2;
  core::Table overhead({"pooling window", "counter area [um2]",
                        "counter growth", "share of accelerator"});
  const double accel_um2 = energy::total_area_mm2(arch) * 1e6;
  const auto counts = energy::component_counts(arch);
  for (int pool : {2, 3}) {
    const double growth = pool == 2 ? 0.027 : 0.087;  // paper's range
    const double grown = counter_area * (1.0 + growth);
    const double delta_total =
        static_cast<double>(counts.counters) * counter_area * growth;
    overhead.add_row({std::to_string(pool) + "x" + std::to_string(pool),
                      core::format_number(grown, 4),
                      core::format_number(100.0 * growth, 2) + "%",
                      core::format_number(100.0 * delta_total / accel_um2,
                                          2) + "%"});
  }
  std::printf("%s\n", overhead.to_string().c_str());

  // --- 3. accuracy: skipping vs MUX pooling, avg vs max pooling ---
  std::printf("training small CNN for the accuracy comparison...\n");
  train::TrainConfig cfg;
  cfg.epochs = 8;
  const train::Dataset tr = train::make_synth_objects(1000, 5, 16);
  const train::Dataset te = train::make_synth_objects(300, 6, 16);

  nn::Network avg_net = train::build_cifar_small(nn::AccumMode::kOrApprox, 16);
  (void)train::fit(avg_net, tr, cfg);
  nn::Network max_net =
      train::build_cifar_small_maxpool(nn::AccumMode::kOrApprox, 16);
  (void)train::fit(max_net, tr, cfg);

  sim::ScConfig skip;
  skip.stream_length = 256;
  sim::ScConfig mux = skip;
  mux.pooling = sim::PoolingMode::kMux;

  // The batch evaluator surfaces the merged executor stats, so besides the
  // accuracy equivalence we can *measure* claim 1 end to end: the skipping
  // run performs ~window-area-fewer MAC product bits than the MUX run.
  sim::BatchEvaluator evaluator(0);
  const auto skip_backend = sim::make_sc_backend(avg_net, skip);
  const auto mux_backend = sim::make_sc_backend(avg_net, mux);
  const sim::EvalResult res_skip = evaluator.evaluate(*skip_backend, te);
  const sim::EvalResult res_mux = evaluator.evaluate(*mux_backend, te);
  const float acc_avg_float = train::evaluate(avg_net, te);
  const float acc_max_float = train::evaluate(max_net, te);

  core::Table acc({"configuration", "accuracy [%]", "MAC product bits"});
  acc.add_row({"avg pooling, float reference",
               core::format_number(100.0 * acc_avg_float, 4), "-"});
  acc.add_row({"max pooling, float reference",
               core::format_number(100.0 * acc_max_float, 4), "-"});
  acc.add_row({"SC, skipping pooling (256 streams)",
               core::format_number(100.0 * res_skip.accuracy, 4),
               core::format_number(
                   static_cast<double>(res_skip.stats.product_bits), 4)});
  acc.add_row({"SC, MUX pooling (256 streams)",
               core::format_number(100.0 * res_mux.accuracy, 4),
               core::format_number(
                   static_cast<double>(res_mux.stats.product_bits), 4)});
  std::printf("%s\n", acc.to_string().c_str());
  std::printf("measured conv-compute reduction (MUX / skipping product "
              "bits): %sx\n\n",
              core::format_number(
                  static_cast<double>(res_mux.stats.product_bits) /
                      static_cast<double>(res_skip.stats.product_bits),
                  3).c_str());
  std::printf("Paper shape: skipping == MUX pooling statistically "
              "(ACOUSTIC regenerates\nstreams per layer, removing the "
              "correlation concern), avg vs max\npooling differ by "
              "< 0.3%% for small CNNs, and the measured product-bit\n"
              "ratio shows the pooled conv layers doing ~window-area less "
              "MAC work.\n");
  return 0;
}
